//! One service session: a scene with its encoder — or a pre-encoded
//! stream set replayed through the slice-parallel decoder — plus its
//! private memory model, stepped one display frame at a time by the
//! service scheduler.

use std::sync::Arc;

use m4ps_bitstream::BitReader;
use m4ps_codec::{
    CodecError, EncoderConfig, FrameView, SceneEncoder, Scheduling, SessionStats,
    VideoObjectDecoder,
};
use m4ps_memsim::{AddressSpace, Counters, NullModel, ParallelModel};
use m4ps_pool::WorkerPool;
use m4ps_vidgen::{Resolution, Scene, SceneSpec};

/// What a session does each step.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionMode {
    /// Generate and encode `frames` synthetic frames (the default).
    Encode,
    /// Replay pre-encoded elementary streams (one per VO) through the
    /// slice-parallel decoder, one display frame per step. The WFQ
    /// cost of a step is the stream bytes it consumed.
    Decode(Arc<Vec<Vec<u8>>>),
}

/// Everything needed to admit one session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSpec {
    /// Frame width (multiple of 16).
    pub width: usize,
    /// Frame height (multiple of 16).
    pub height: usize,
    /// Frames this session encodes (or decodes) before completing.
    pub frames: usize,
    /// Visual objects: 0 = one rectangular VO, ≥1 = shaped VOs.
    pub objects: usize,
    /// Layers per object (1 or 2; decode sessions support 1).
    pub layers: usize,
    /// Scene content seed — two sessions with the same seed encode the
    /// same content.
    pub seed: u64,
    /// Weighted-fair-queueing weight: a weight-2 session is entitled
    /// to twice the bytes-per-virtual-time of a weight-1 session.
    pub weight: u32,
    /// Codec configuration; `encoder.bitrate` is the session's rate
    /// budget (per-session rate controller).
    pub encoder: EncoderConfig,
    /// Encode fresh content or replay a pre-encoded stream set.
    pub mode: SessionMode,
}

impl SessionSpec {
    /// A small fast session for tests, benches and smoke loads:
    /// 64×48 rectangular VO with the cheap test codec config, sliced
    /// in two so every VOP actually schedules jobs onto the shared
    /// pool (unsliced VOPs encode inline and never queue, which would
    /// starve the queue-wait admission signal).
    pub fn tiny(seed: u64, frames: usize) -> Self {
        SessionSpec {
            width: 64,
            height: 48,
            frames,
            objects: 0,
            layers: 1,
            seed,
            weight: 1,
            encoder: EncoderConfig::fast_test().with_slices(2),
            mode: SessionMode::Encode,
        }
    }

    /// Converts an encode spec into a decode spec by pre-encoding its
    /// content once (untraced, off the service clock) and storing the
    /// streams for replay — the loadgen "sessions replay pre-encoded
    /// streams" model. Shared seeds share nothing: each spec carries
    /// its own stream set.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on codec geometry errors, or when
    /// `layers != 1` (decode sessions replay single-layer streams).
    pub fn into_decode(mut self) -> Result<SessionSpec, CodecError> {
        if self.layers != 1 {
            return Err(CodecError::InvalidConfig(
                "decode sessions replay single-layer streams",
            ));
        }
        let mut space = AddressSpace::new();
        let mut mem = NullModel::new();
        let scene = Scene::new(SceneSpec {
            resolution: Resolution::new(self.width, self.height),
            objects: self.objects.max(1),
            seed: self.seed,
        });
        let mut enc = SceneEncoder::new(
            &mut space,
            self.width,
            self.height,
            self.objects,
            self.layers,
            self.encoder,
        )?;
        let mut mask_storage: Vec<Vec<u8>> = Vec::new();
        for t in 0..self.frames {
            let frame = scene.frame(t);
            mask_storage.clear();
            for vo in 0..self.objects {
                mask_storage.push(scene.alpha(t, vo).data);
            }
            let masks: Vec<&[u8]> = mask_storage.iter().map(|m| m.as_slice()).collect();
            let view = FrameView {
                width: frame.resolution.width,
                height: frame.resolution.height,
                y: &frame.y,
                u: &frame.u,
                v: &frame.v,
            };
            enc.encode_frame(&mut mem, &view, &masks)?;
        }
        let streams = enc.finish(&mut mem)?;
        self.mode = SessionMode::Decode(Arc::new(streams));
        Ok(self)
    }
}

/// Encode-session state: the scene, its encoder (whose `SliceScratch`
/// arenas are recycled for the whole session lifetime), and the
/// finished streams once flushed.
struct EncodeWork {
    scene: Scene,
    enc: SceneEncoder,
    /// Recycled per-frame mask storage (one buffer per object).
    mask_storage: Vec<Vec<u8>>,
    streams: Option<Vec<Vec<u8>>>,
}

/// Decode-session state: the replayed streams, one slice-parallel
/// decoder per VO stream, and each stream's resume bit position (the
/// session owns the stream bytes through the `Arc`, so readers are
/// rebuilt per step instead of holding self-referential borrows).
struct DecodeWork {
    streams: Arc<Vec<Vec<u8>>>,
    decs: Vec<VideoObjectDecoder>,
    pos: Vec<u64>,
    stats: SessionStats,
    done: bool,
}

enum Work {
    Encode(EncodeWork),
    Decode(DecodeWork),
}

/// A live session: owns its address space, memory model and codec
/// state (encoder or decoder side), scheduled onto the service's
/// shared pool.
pub struct Session<M: ParallelModel> {
    spec: SessionSpec,
    space: AddressSpace,
    mem: M,
    next_frame: usize,
    work: Work,
}

impl<M: ParallelModel> Session<M> {
    /// Builds a session on `pool`. `attach` runs after every codec
    /// buffer is allocated and before any traffic (a `Hierarchy`
    /// caller wires up region attribution there; pass a no-op for
    /// `NullModel`).
    ///
    /// # Errors
    ///
    /// Propagates codec configuration/geometry errors.
    pub fn new(
        spec: SessionSpec,
        mut mem: M,
        pool: Arc<WorkerPool>,
        sched: Option<Scheduling>,
        attach: impl FnOnce(&AddressSpace, &mut M),
    ) -> Result<Self, CodecError> {
        let mut space = AddressSpace::new();
        let work = match &spec.mode {
            SessionMode::Encode => {
                let scene = Scene::new(SceneSpec {
                    resolution: Resolution::new(spec.width, spec.height),
                    objects: spec.objects.max(1),
                    seed: spec.seed,
                });
                let mut enc = SceneEncoder::new(
                    &mut space,
                    spec.width,
                    spec.height,
                    spec.objects,
                    spec.layers,
                    spec.encoder,
                )?;
                enc.set_pool(pool);
                if let Some(s) = sched {
                    enc.set_scheduling(s);
                }
                Work::Encode(EncodeWork {
                    scene,
                    enc,
                    mask_storage: Vec::with_capacity(spec.objects),
                    streams: None,
                })
            }
            SessionMode::Decode(streams) => {
                let streams = streams.clone();
                let mut decs = Vec::with_capacity(streams.len());
                let mut pos = Vec::with_capacity(streams.len());
                for stream in streams.iter() {
                    let mut r = BitReader::new(stream);
                    let mut dec = VideoObjectDecoder::from_stream(&mut space, &mut mem, &mut r)?;
                    dec.set_pool(pool.clone());
                    if let Some(s) = sched {
                        dec.set_scheduling(s);
                    }
                    decs.push(dec);
                    pos.push(r.bit_pos());
                }
                Work::Decode(DecodeWork {
                    streams,
                    decs,
                    pos,
                    stats: SessionStats::default(),
                    done: false,
                })
            }
        };
        attach(&space, &mut mem);
        Ok(Session {
            spec,
            space,
            mem,
            next_frame: 0,
            work,
        })
    }

    /// The session's spec.
    pub fn spec(&self) -> &SessionSpec {
        &self.spec
    }

    /// Processes the next display frame (the scheduler's unit of
    /// work): encodes it — flushing the coders after the last one — or
    /// decodes one VOP from every replayed stream. Returns the
    /// bitstream bytes this step produced or consumed — the WFQ cost.
    /// Must not be called once [`Session::is_done`].
    ///
    /// # Errors
    ///
    /// Propagates codec errors; a failed session is torn down by the
    /// service.
    pub fn step(&mut self) -> Result<u64, CodecError> {
        assert!(!self.is_done(), "step() on a finished session");
        let t = self.next_frame;
        self.next_frame += 1;
        match &mut self.work {
            Work::Encode(w) => {
                let before = w.enc.stats().bytes;
                let frame = w.scene.frame(t);
                // Reuse the per-object mask buffers across frames.
                for vo in 0..self.spec.objects {
                    let mask = w.scene.alpha(t, vo);
                    match w.mask_storage.get_mut(vo) {
                        Some(buf) => {
                            buf.clear();
                            buf.extend_from_slice(&mask.data);
                        }
                        None => w.mask_storage.push(mask.data),
                    }
                }
                let masks: Vec<&[u8]> = w.mask_storage.iter().map(|m| m.as_slice()).collect();
                let view = FrameView {
                    width: frame.resolution.width,
                    height: frame.resolution.height,
                    y: &frame.y,
                    u: &frame.u,
                    v: &frame.v,
                };
                w.enc.encode_frame(&mut self.mem, &view, &masks)?;
                if self.next_frame == self.spec.frames {
                    w.streams = Some(w.enc.finish(&mut self.mem)?);
                }
                Ok(w.enc.stats().bytes - before)
            }
            Work::Decode(w) => {
                let mut consumed = 0u64;
                for i in 0..w.decs.len() {
                    let mut r = BitReader::new(&w.streams[i]);
                    r.seek_to(w.pos[i]);
                    match w.decs[i].decode_next(&mut self.mem, &mut r)? {
                        Some(vop) => {
                            consumed += (r.bit_pos() - w.pos[i]).div_ceil(8);
                            w.stats.vops += 1;
                            w.stats.totals.merge(&vop.stats);
                        }
                        None => {
                            return Err(CodecError::InvalidStream(
                                "decode session stream ended early",
                            ))
                        }
                    }
                    w.pos[i] = r.bit_pos();
                }
                w.stats.bytes += consumed;
                w.stats.frames += 1;
                if self.next_frame == self.spec.frames {
                    w.done = true;
                }
                Ok(consumed)
            }
        }
    }

    /// Whether every frame has been processed (and, for encode
    /// sessions, the coders flushed).
    pub fn is_done(&self) -> bool {
        match &self.work {
            Work::Encode(w) => w.streams.is_some(),
            Work::Decode(w) => w.done,
        }
    }

    /// Frames processed so far.
    pub fn frames_done(&self) -> usize {
        self.next_frame
    }

    /// Session statistics so far.
    pub fn stats(&self) -> SessionStats {
        match &self.work {
            Work::Encode(w) => w.enc.stats(),
            Work::Decode(w) => w.stats,
        }
    }

    /// The session's private counter stream.
    pub fn counters(&self) -> Counters {
        *self.mem.counters()
    }

    /// Simulated bytes the session's address space holds.
    pub fn resident_bytes(&self) -> u64 {
        self.space.allocated_bytes()
    }

    /// VOPs a decode session re-decoded sequentially after a parallel
    /// attempt aborted (always 0 on clean streams; 0 for encode
    /// sessions).
    pub fn parallel_fallbacks(&self) -> u64 {
        match &self.work {
            Work::Encode(_) => 0,
            Work::Decode(w) => w.decs.iter().map(|d| d.parallel_fallbacks()).sum(),
        }
    }

    /// Consumes the finished session, returning its elementary streams
    /// (empty for decode sessions, which replay rather than produce),
    /// statistics and counters.
    ///
    /// # Panics
    ///
    /// Panics when the session is not [`Session::is_done`].
    pub fn into_output(self) -> (Vec<Vec<u8>>, SessionStats, Counters) {
        let counters = *self.mem.counters();
        match self.work {
            Work::Encode(w) => {
                let stats = w.enc.stats();
                (w.streams.expect("session finished"), stats, counters)
            }
            Work::Decode(w) => {
                assert!(w.done, "session finished");
                (Vec::new(), w.stats, counters)
            }
        }
    }
}

// Sessions migrate between driver threads (whichever driver claims the
// next ready frame job steps the session), so they must be `Send`.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Session<m4ps_memsim::NullModel>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use m4ps_memsim::NullModel;

    #[test]
    fn session_steps_to_completion() {
        let pool = Arc::new(WorkerPool::new(1));
        let mut s = Session::new(
            SessionSpec::tiny(7, 3),
            NullModel::new(),
            pool,
            Some(Scheduling::SliceParallel),
            |_, _| {},
        )
        .unwrap();
        let mut cost = 0;
        while !s.is_done() {
            cost += s.step().unwrap();
        }
        assert_eq!(s.frames_done(), 3);
        let (streams, stats, _) = s.into_output();
        assert_eq!(stats.frames, 3);
        assert_eq!(stats.bytes, cost, "step costs sum to the stream bytes");
        assert!(streams.iter().map(|s| s.len() as u64).sum::<u64>() >= cost);
    }

    #[test]
    fn decode_session_replays_the_encoded_stream() {
        let spec = SessionSpec::tiny(7, 3).into_decode().unwrap();
        let SessionMode::Decode(streams) = &spec.mode else {
            panic!("into_decode did not switch the mode");
        };
        let total: u64 = streams.iter().map(|s| s.len() as u64).sum();
        let pool = Arc::new(WorkerPool::new(2));
        let mut s = Session::new(spec.clone(), NullModel::new(), pool, None, |_, _| {}).unwrap();
        let mut cost = 0;
        while !s.is_done() {
            cost += s.step().unwrap();
        }
        assert_eq!(s.frames_done(), 3);
        assert_eq!(s.parallel_fallbacks(), 0, "clean replay fell back");
        let (streams_out, stats, _) = s.into_output();
        assert!(streams_out.is_empty(), "decode sessions produce no streams");
        assert_eq!(stats.frames, 3);
        assert_eq!(stats.vops, 3);
        assert_eq!(stats.bytes, cost, "step costs sum to the consumed bytes");
        // Every payload byte is consumed (the VOL headers are read at
        // construction, off the step clock).
        assert!(cost <= total && cost >= total - streams.len() as u64 * 16);
    }

    #[test]
    fn scalable_specs_cannot_become_decode_sessions() {
        let spec = SessionSpec {
            layers: 2,
            ..SessionSpec::tiny(7, 2)
        };
        assert!(spec.into_decode().is_err());
    }
}
