//! One encoding session: a scene, its encoder, and its private memory
//! model, stepped one frame at a time by the service scheduler.

use std::sync::Arc;

use m4ps_codec::{CodecError, EncoderConfig, FrameView, SceneEncoder, Scheduling, SessionStats};
use m4ps_memsim::{AddressSpace, Counters, ParallelModel};
use m4ps_pool::WorkerPool;
use m4ps_vidgen::{Resolution, Scene, SceneSpec};

/// Everything needed to admit one session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSpec {
    /// Frame width (multiple of 16).
    pub width: usize,
    /// Frame height (multiple of 16).
    pub height: usize,
    /// Frames this session encodes before completing.
    pub frames: usize,
    /// Visual objects: 0 = one rectangular VO, ≥1 = shaped VOs.
    pub objects: usize,
    /// Layers per object (1 or 2).
    pub layers: usize,
    /// Scene content seed — two sessions with the same seed encode the
    /// same content.
    pub seed: u64,
    /// Weighted-fair-queueing weight: a weight-2 session is entitled
    /// to twice the bytes-per-virtual-time of a weight-1 session.
    pub weight: u32,
    /// Codec configuration; `encoder.bitrate` is the session's rate
    /// budget (per-session rate controller).
    pub encoder: EncoderConfig,
}

impl SessionSpec {
    /// A small fast session for tests, benches and smoke loads:
    /// 64×48 rectangular VO with the cheap test codec config, sliced
    /// in two so every VOP actually schedules jobs onto the shared
    /// pool (unsliced VOPs encode inline and never queue, which would
    /// starve the queue-wait admission signal).
    pub fn tiny(seed: u64, frames: usize) -> Self {
        SessionSpec {
            width: 64,
            height: 48,
            frames,
            objects: 0,
            layers: 1,
            seed,
            weight: 1,
            encoder: EncoderConfig::fast_test().with_slices(2),
        }
    }
}

/// A live session: owns its address space, scene, memory model and
/// scene encoder (whose `SliceScratch` arenas are recycled for the
/// whole session lifetime), scheduled onto the service's shared pool.
pub struct Session<M: ParallelModel> {
    spec: SessionSpec,
    space: AddressSpace,
    mem: M,
    scene: Scene,
    enc: SceneEncoder,
    next_frame: usize,
    /// Recycled per-frame mask storage (one buffer per object).
    mask_storage: Vec<Vec<u8>>,
    streams: Option<Vec<Vec<u8>>>,
}

impl<M: ParallelModel> Session<M> {
    /// Builds a session on `pool`. `attach` runs after every codec
    /// buffer is allocated and before any traffic (a `Hierarchy`
    /// caller wires up region attribution there; pass a no-op for
    /// `NullModel`).
    ///
    /// # Errors
    ///
    /// Propagates codec configuration/geometry errors.
    pub fn new(
        spec: SessionSpec,
        mut mem: M,
        pool: Arc<WorkerPool>,
        sched: Option<Scheduling>,
        attach: impl FnOnce(&AddressSpace, &mut M),
    ) -> Result<Self, CodecError> {
        let mut space = AddressSpace::new();
        let scene = Scene::new(SceneSpec {
            resolution: Resolution::new(spec.width, spec.height),
            objects: spec.objects.max(1),
            seed: spec.seed,
        });
        let mut enc = SceneEncoder::new(
            &mut space,
            spec.width,
            spec.height,
            spec.objects,
            spec.layers,
            spec.encoder,
        )?;
        enc.set_pool(pool);
        if let Some(s) = sched {
            enc.set_scheduling(s);
        }
        attach(&space, &mut mem);
        Ok(Session {
            mask_storage: Vec::with_capacity(spec.objects),
            spec,
            space,
            mem,
            scene,
            enc,
            next_frame: 0,
            streams: None,
        })
    }

    /// The session's spec.
    pub fn spec(&self) -> &SessionSpec {
        &self.spec
    }

    /// Encodes the next frame (the scheduler's unit of work), flushing
    /// the coders after the last one. Returns the bitstream bytes this
    /// step produced — the WFQ cost. Must not be called once
    /// [`Session::is_done`].
    ///
    /// # Errors
    ///
    /// Propagates codec errors; a failed session is torn down by the
    /// service.
    pub fn step(&mut self) -> Result<u64, CodecError> {
        assert!(!self.is_done(), "step() on a finished session");
        let before = self.enc.stats().bytes;
        let t = self.next_frame;
        self.next_frame += 1;
        let frame = self.scene.frame(t);
        // Reuse the per-object mask buffers across frames.
        for vo in 0..self.spec.objects {
            let mask = self.scene.alpha(t, vo);
            match self.mask_storage.get_mut(vo) {
                Some(buf) => {
                    buf.clear();
                    buf.extend_from_slice(&mask.data);
                }
                None => self.mask_storage.push(mask.data),
            }
        }
        let masks: Vec<&[u8]> = self.mask_storage.iter().map(|m| m.as_slice()).collect();
        let view = FrameView {
            width: frame.resolution.width,
            height: frame.resolution.height,
            y: &frame.y,
            u: &frame.u,
            v: &frame.v,
        };
        self.enc.encode_frame(&mut self.mem, &view, &masks)?;
        if self.next_frame == self.spec.frames {
            self.streams = Some(self.enc.finish(&mut self.mem)?);
        }
        Ok(self.enc.stats().bytes - before)
    }

    /// Whether every frame has been encoded and the coders flushed.
    pub fn is_done(&self) -> bool {
        self.streams.is_some()
    }

    /// Frames encoded so far.
    pub fn frames_done(&self) -> usize {
        self.next_frame
    }

    /// Session statistics so far.
    pub fn stats(&self) -> SessionStats {
        self.enc.stats()
    }

    /// The session's private counter stream.
    pub fn counters(&self) -> Counters {
        *self.mem.counters()
    }

    /// Simulated bytes the session's address space holds.
    pub fn resident_bytes(&self) -> u64 {
        self.space.allocated_bytes()
    }

    /// Consumes the finished session, returning its elementary streams,
    /// statistics and counters.
    ///
    /// # Panics
    ///
    /// Panics when the session is not [`Session::is_done`].
    pub fn into_output(self) -> (Vec<Vec<u8>>, SessionStats, Counters) {
        let stats = self.enc.stats();
        let counters = *self.mem.counters();
        (self.streams.expect("session finished"), stats, counters)
    }
}

// Sessions migrate between driver threads (whichever driver claims the
// next ready frame job steps the session), so they must be `Send`.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Session<m4ps_memsim::NullModel>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use m4ps_memsim::NullModel;

    #[test]
    fn session_steps_to_completion() {
        let pool = Arc::new(WorkerPool::new(1));
        let mut s = Session::new(
            SessionSpec::tiny(7, 3),
            NullModel::new(),
            pool,
            Some(Scheduling::SliceParallel),
            |_, _| {},
        )
        .unwrap();
        let mut cost = 0;
        while !s.is_done() {
            cost += s.step().unwrap();
        }
        assert_eq!(s.frames_done(), 3);
        let (streams, stats, _) = s.into_output();
        assert_eq!(stats.frames, 3);
        assert_eq!(stats.bytes, cost, "step costs sum to the stream bytes");
        assert!(streams.iter().map(|s| s.len() as u64).sum::<u64>() >= cost);
    }
}
