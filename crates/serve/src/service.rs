//! The multi-session service: admission control, weighted fair
//! queueing, and a driver-thread crew multiplexing frame jobs onto one
//! shared worker pool.
//!
//! # Scheduling model
//!
//! The unit of work is one *frame job* (a [`Session::step`] call — one
//! display frame, every VOP it produces). Sessions are virtual-time
//! fair-queued: each completed job advances its session's virtual time
//! by `bytes_produced / weight`, and the next job scheduled is always
//! the ready session with the smallest virtual time. A weight-2
//! session therefore converges to twice the bytes-per-wall-second of a
//! weight-1 competitor under saturation, and an idle service serves a
//! lone session at full pool speed.
//!
//! # Admission control
//!
//! The signal is the shared pool's `slice_queue_wait_ns` histogram —
//! the time row/slice tasks sit in the work-stealing deques. The
//! controller watches a sliding window (snapshot deltas, so old load
//! spikes age out) and rejects new sessions when the window's p99
//! crosses [`AdmissionConfig::reject_p99_ns`]; under sustained
//! overload past [`AdmissionConfig::shed_p99_ns`] it shed-cancels
//! admitted sessions that have not yet encoded a frame. Accepted,
//! rejected and shed counts are exported as `obs` counters.
//!
//! # Invariant
//!
//! Scheduling never changes what a session computes: every session
//! owns its scene, encoder state and forked memory model, so its
//! bitstream and counters are bit-identical to a solo run at any
//! session/driver/thread count (pinned by `tests/session_isolation.rs`).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use m4ps_codec::{Scheduling, SessionStats};
use m4ps_memsim::{AddressSpace, Counters, ParallelModel};
use m4ps_obs::{outcome, EventKind, HistogramSnapshot, MetricId, Profiler, Recorder};
use m4ps_pool::WorkerPool;

use crate::session::{Session, SessionSpec};

/// Queue-wait-driven admission thresholds. `None` disables a control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Reject new sessions while the windowed p99 queue wait exceeds
    /// this (nanoseconds).
    pub reject_p99_ns: Option<u64>,
    /// Shed not-yet-started sessions while the windowed p99 queue wait
    /// exceeds this (nanoseconds). Should be ≥ `reject_p99_ns`.
    pub shed_p99_ns: Option<u64>,
    /// Minimum samples in a decision window; with fewer the controller
    /// abstains (admits) rather than acting on noise.
    pub min_window: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            reject_p99_ns: None,
            shed_p99_ns: None,
            min_window: 64,
        }
    }
}

/// Service-level knobs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServiceConfig {
    /// Shared pool size; 0 resolves from `M4PS_THREADS` / available
    /// parallelism.
    pub threads: usize,
    /// Driver threads (frame jobs in flight concurrently); 0 = one per
    /// pool thread.
    pub drivers: usize,
    /// Scheduling mode handed to every session's coders; `None` keeps
    /// the `M4PS_SCHED` / default behaviour.
    pub sched: Option<Scheduling>,
    /// Admission thresholds.
    pub admission: AdmissionConfig,
    /// Frame-latency SLO (ready → encoded, nanoseconds). A breach is
    /// an anomaly: it records an `slo.breach` event and triggers a
    /// flight-recorder dump. `None` disables the check.
    pub slo_ns: Option<u64>,
    /// Directory anomaly dumps are written to (`flight_<n>.jsonl` +
    /// `flight_<n>.trace.json`). `None` keeps dumps in memory only
    /// (still retrievable via [`Service::recorder`]).
    pub dump_dir: Option<String>,
    /// Flight-recorder ring capacity in events per thread; 0 picks
    /// [`m4ps_obs::DEFAULT_RING_CAPACITY`].
    pub recorder_capacity: usize,
}

/// How one submitted session ended.
pub enum SessionStatus {
    /// Encoded every frame; bitstreams, stats and the session's private
    /// counter stream.
    Completed {
        /// Per-(vo, layer) elementary streams.
        streams: Vec<Vec<u8>>,
        /// Codec session statistics.
        stats: SessionStats,
        /// The session's merged memory-model counters.
        counters: Counters,
    },
    /// Refused at submit by admission control.
    Rejected,
    /// Admitted, then cancelled before its first frame under sustained
    /// overload.
    Shed,
    /// A codec error ended the session early.
    Failed(String),
}

impl std::fmt::Debug for SessionStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionStatus::Completed { streams, stats, .. } => f
                .debug_struct("Completed")
                .field("streams", &streams.len())
                .field("bytes", &stats.bytes)
                .finish(),
            SessionStatus::Rejected => write!(f, "Rejected"),
            SessionStatus::Shed => write!(f, "Shed"),
            SessionStatus::Failed(e) => write!(f, "Failed({e})"),
        }
    }
}

/// Outcome of one submitted session, in submission order.
#[derive(Debug)]
pub struct SessionOutcome {
    /// Submission index.
    pub id: usize,
    /// How the session ended.
    pub status: SessionStatus,
}

/// Aggregate result of a service run.
#[derive(Debug)]
pub struct ServiceReport {
    /// Per-session outcomes, ordered by submission index.
    pub outcomes: Vec<SessionOutcome>,
    /// Wall time from run start to quiescence.
    pub wall: Duration,
    /// Sessions that completed every frame.
    pub completed: u64,
    /// Sessions rejected at submit.
    pub rejected: u64,
    /// Sessions shed after admission.
    pub shed: u64,
    /// Sessions that failed with a codec error.
    pub failed: u64,
    /// Frame jobs executed.
    pub frames: u64,
    /// Completed sessions per wall second.
    pub sessions_per_sec: f64,
    /// Frame jobs per wall second.
    pub frames_per_sec: f64,
    /// Frame latency distribution (ready → encoded, nanoseconds) for
    /// this run only.
    pub frame_latency: HistogramSnapshot,
    /// Pool queue-wait distribution (nanoseconds) for this run only.
    pub queue_wait: HistogramSnapshot,
    /// Work-stealing steals attributed to this run's scopes.
    pub steals: u64,
    /// Path of the flight-recorder dump this run's first anomaly wrote
    /// (`None`: no anomaly, or no `dump_dir` configured).
    pub dump: Option<String>,
    /// Flight-recorder events displaced by ring overflow so far
    /// (recorder lifetime, not per run).
    pub events_dropped: u64,
}

/// A long-running multi-session encoding service over one shared
/// [`WorkerPool`] and one `obs` session for service metrics.
pub struct Service {
    pool: Arc<WorkerPool>,
    profiler: Profiler,
    recorder: Recorder,
    config: ServiceConfig,
    /// Sliding-window anchor for the reject decision. Lives on the
    /// service (not the run) so load observed before a run — earlier
    /// runs on this long-lived service — still counts against new
    /// arrivals.
    admit_anchor: Mutex<HistogramSnapshot>,
    /// Sliding-window anchor for the shed decision.
    shed_anchor: Mutex<HistogramSnapshot>,
    /// One dump per run: armed at run start, disarmed by the first
    /// anomaly (later anomalies are already inside the dumped rings).
    dumped: AtomicBool,
    /// Monotonic dump file sequence across the service's lifetime.
    dump_seq: AtomicU64,
    /// Path the current run's anomaly dump was written to, if any.
    last_dump: Mutex<Option<String>>,
}

/// Virtual-time scale: cost is `bytes * VT_SCALE / weight`, so integer
/// division keeps sub-byte precision for large weights.
const VT_SCALE: u64 = 1024;

/// Scheduler state for one run (under the run's mutex).
struct Sched<M: ParallelModel> {
    entries: Vec<Entry<M>>,
    /// Virtual time of the most recently scheduled job; newly admitted
    /// sessions start here so they cannot claim credit for time before
    /// their arrival.
    virtual_now: u64,
    /// Frame jobs currently executing on drivers.
    running: usize,
    /// Open-loop arrivals still possible.
    accepting: bool,
    frames: u64,
}

enum EntryState<M: ParallelModel> {
    /// Waiting for a driver; the instant the session became ready and
    /// its live state.
    Ready(Instant, Box<Session<M>>),
    /// A driver is stepping it.
    Running,
    /// Finished (completed, failed or shed); outcome recorded.
    Done,
}

struct Entry<M: ParallelModel> {
    id: usize,
    weight: u32,
    vtime: u64,
    state: EntryState<M>,
}

impl<M: ParallelModel> Sched<M> {
    fn active(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| !matches!(e.state, EntryState::Done))
            .count()
    }

    fn quiescent(&self) -> bool {
        !self.accepting && self.running == 0 && self.active() == 0
    }

    /// Index of the ready entry with the smallest virtual time (ties
    /// broken by submission order, for determinism).
    fn pick(&self) -> Option<usize> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e.state, EntryState::Ready(..)))
            .min_by_key(|(_, e)| (e.vtime, e.id))
            .map(|(i, _)| i)
    }
}

impl Service {
    /// Spawns the shared pool, creates the service's `obs` session and
    /// installs the always-on flight recorder on both the profiler
    /// (coarse phase events) and the pool (queue/steal/park/wake).
    pub fn new(config: ServiceConfig) -> Self {
        let pool = Arc::new(if config.threads > 0 {
            WorkerPool::new(config.threads)
        } else {
            WorkerPool::from_env()
        });
        let profiler = Profiler::new(false);
        let recorder = Recorder::new(config.recorder_capacity);
        profiler.set_recorder(&recorder);
        pool.set_recorder(&recorder);
        Service {
            pool,
            profiler,
            recorder,
            config,
            admit_anchor: Mutex::new(HistogramSnapshot::empty()),
            shed_anchor: Mutex::new(HistogramSnapshot::empty()),
            dumped: AtomicBool::new(false),
            dump_seq: AtomicU64::new(0),
            last_dump: Mutex::new(None),
        }
    }

    /// The shared worker pool.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// The service's `obs` session (lifetime metrics; per-run numbers
    /// are in the [`ServiceReport`]).
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// The service's flight recorder (snapshot it any time for an
    /// on-demand dump; anomaly dumps happen automatically).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Records a session-lifecycle/scheduler event into the calling
    /// thread's ring.
    fn record(&self, kind: EventKind, session: usize, a: u64, b: u64) {
        self.recorder.record(kind, Some(session as u32), a, b);
    }

    /// First anomaly of the run snapshots the rings and (when
    /// `dump_dir` is set) writes `flight_<n>.jsonl` plus its Chrome
    /// trace. Later anomalies in the same run are no-ops — their
    /// events are already in the written rings, and one dump per run
    /// keeps the anomaly path cheap under a shed storm.
    fn note_anomaly(&self) {
        if self.dumped.swap(true, Ordering::Relaxed) {
            return;
        }
        let Some(dir) = &self.config.dump_dir else {
            return;
        };
        let seq = self.dump_seq.fetch_add(1, Ordering::Relaxed);
        let path = format!("{dir}/flight_{seq}.jsonl");
        match self.recorder.snapshot().write(&path) {
            Ok(_) => *self.last_dump.lock().unwrap() = Some(path),
            Err(e) => eprintln!("m4ps-serve: failed to write flight dump {path}: {e}"),
        }
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    fn drivers(&self) -> usize {
        let d = if self.config.drivers > 0 {
            self.config.drivers
        } else {
            self.pool.threads()
        };
        d.max(1)
    }

    /// Closed-loop batch: submits every spec up front (admission still
    /// applies), drives all sessions to completion, returns the report.
    ///
    /// `make_mem` builds each session's private memory model; `attach`
    /// runs once per session after allocation (region attribution for
    /// `Hierarchy` models; no-op for `NullModel`).
    pub fn run_batch<M, F, A>(
        &self,
        specs: Vec<SessionSpec>,
        make_mem: F,
        attach: A,
    ) -> ServiceReport
    where
        M: ParallelModel + Send,
        F: Fn(usize, &SessionSpec) -> M + Sync,
        A: Fn(&AddressSpace, &mut M) + Sync,
    {
        let arrivals = specs.into_iter().map(|s| (Duration::ZERO, s)).collect();
        self.run(arrivals, make_mem, attach)
    }

    /// Open-loop run: each spec arrives `offset` after the run starts
    /// (offsets need not be sorted; submission order is arrival order
    /// after sorting). Admission control applies at each arrival.
    pub fn run_open_loop<M, F, A>(
        &self,
        mut arrivals: Vec<(Duration, SessionSpec)>,
        make_mem: F,
        attach: A,
    ) -> ServiceReport
    where
        M: ParallelModel + Send,
        F: Fn(usize, &SessionSpec) -> M + Sync,
        A: Fn(&AddressSpace, &mut M) + Sync,
    {
        arrivals.sort_by_key(|(at, _)| *at);
        self.run(arrivals, make_mem, attach)
    }

    fn run<M, F, A>(
        &self,
        arrivals: Vec<(Duration, SessionSpec)>,
        make_mem: F,
        attach: A,
    ) -> ServiceReport
    where
        M: ParallelModel + Send,
        F: Fn(usize, &SessionSpec) -> M + Sync,
        A: Fn(&AddressSpace, &mut M) + Sync,
    {
        let start = Instant::now();
        let latency_before = self
            .profiler
            .histogram_snapshot(MetricId::ServeFrameLatencyNs);
        let wait_before = self.profiler.histogram_snapshot(MetricId::SliceQueueWaitNs);
        let steals_before = self.profiler.metric_counter_value(MetricId::PoolSteals);
        // Re-arm the per-run anomaly dump.
        self.dumped.store(false, Ordering::Relaxed);
        *self.last_dump.lock().unwrap() = None;

        let state = Mutex::new(Sched::<M> {
            entries: Vec::with_capacity(arrivals.len()),
            virtual_now: 0,
            running: 0,
            accepting: true,
            frames: 0,
        });
        let cv = Condvar::new();
        // Outcome slots indexed by submission id, filled as sessions end.
        let outcomes: Mutex<Vec<Option<SessionStatus>>> =
            Mutex::new(Vec::with_capacity(arrivals.len()));
        let completed = AtomicU64::new(0);
        let failed = AtomicU64::new(0);
        let rejected = AtomicU64::new(0);
        let shed = AtomicU64::new(0);

        std::thread::scope(|ts| {
            for _ in 0..self.drivers() {
                ts.spawn(|| self.driver_loop(&state, &cv, &outcomes, &completed, &failed, &shed));
            }
            // Arrival loop on the caller thread.
            for (id, (at, spec)) in arrivals.into_iter().enumerate() {
                if let Some(pause) = at.checked_sub(start.elapsed()) {
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                }
                outcomes.lock().unwrap().push(None);
                self.record(EventKind::SessionSubmit, id, 0, 0);
                if let Err(hot_p99) = self.admit() {
                    outcomes.lock().unwrap()[id] = Some(SessionStatus::Rejected);
                    rejected.fetch_add(1, Ordering::Relaxed);
                    self.profiler
                        .metric_counter_add(MetricId::ServeSessionsRejected, 1);
                    self.record(EventKind::AdmitReject, id, hot_p99, 0);
                    self.record(EventKind::SessionClose, id, outcome::REJECTED, 0);
                    self.note_anomaly();
                    continue;
                }
                let mem = make_mem(id, &spec);
                let session = Session::new(
                    spec.clone(),
                    mem,
                    self.pool.clone(),
                    self.config.sched,
                    &attach,
                );
                let mut st = state.lock().unwrap();
                match session {
                    Ok(s) => {
                        self.profiler
                            .metric_counter_add(MetricId::ServeSessionsAccepted, 1);
                        self.record(EventKind::SessionOpen, id, u64::from(spec.weight.max(1)), 0);
                        self.record(EventKind::FrameReady, id, 0, 0);
                        let vtime = st.virtual_now;
                        st.entries.push(Entry {
                            id,
                            weight: spec.weight.max(1),
                            vtime,
                            state: EntryState::Ready(Instant::now(), Box::new(s)),
                        });
                        self.profiler
                            .metric_gauge_set(MetricId::ServeSessionsActive, st.active() as u64);
                    }
                    Err(e) => {
                        outcomes.lock().unwrap()[id] =
                            Some(SessionStatus::Failed(format!("{e:?}")));
                        failed.fetch_add(1, Ordering::Relaxed);
                        self.record(EventKind::SessionClose, id, outcome::FAILED, 0);
                    }
                }
                drop(st);
                cv.notify_all();
            }
            {
                let mut st = state.lock().unwrap();
                st.accepting = false;
            }
            cv.notify_all();
        });

        let wall = start.elapsed();
        let frames = state.lock().unwrap().frames;
        let outcomes: Vec<SessionOutcome> = outcomes
            .into_inner()
            .unwrap()
            .into_iter()
            .enumerate()
            .map(|(id, status)| SessionOutcome {
                id,
                status: status.expect("every submitted session has an outcome"),
            })
            .collect();
        let completed = completed.load(Ordering::Relaxed);
        let secs = wall.as_secs_f64().max(1e-9);
        ServiceReport {
            frame_latency: self
                .profiler
                .histogram_snapshot(MetricId::ServeFrameLatencyNs)
                .delta_since(&latency_before),
            queue_wait: self
                .profiler
                .histogram_snapshot(MetricId::SliceQueueWaitNs)
                .delta_since(&wait_before),
            steals: self.profiler.metric_counter_value(MetricId::PoolSteals) - steals_before,
            dump: self.last_dump.lock().unwrap().clone(),
            events_dropped: self.recorder.events_dropped(),
            outcomes,
            wall,
            completed,
            rejected: rejected.load(Ordering::Relaxed),
            shed: shed.load(Ordering::Relaxed),
            failed: failed.load(Ordering::Relaxed),
            frames,
            sessions_per_sec: completed as f64 / secs,
            frames_per_sec: frames as f64 / secs,
        }
    }

    /// Admission decision at submit time: watch the queue-wait window
    /// since the last full window; reject while its p99 exceeds the
    /// threshold, returning the triggering p99. Abstains (admits)
    /// below `min_window` samples.
    fn admit(&self) -> Result<(), u64> {
        let Some(threshold) = self.config.admission.reject_p99_ns else {
            return Ok(());
        };
        let now = self.profiler.histogram_snapshot(MetricId::SliceQueueWaitNs);
        let mut anchor = self.admit_anchor.lock().unwrap();
        let window = now.delta_since(&anchor);
        if window.count < self.config.admission.min_window {
            return Ok(());
        }
        *anchor = now;
        let p99 = window.p99();
        if p99 <= threshold {
            Ok(())
        } else {
            Err(p99)
        }
    }

    fn driver_loop<M: ParallelModel + Send>(
        &self,
        state: &Mutex<Sched<M>>,
        cv: &Condvar,
        outcomes: &Mutex<Vec<Option<SessionStatus>>>,
        completed: &AtomicU64,
        failed: &AtomicU64,
        shed: &AtomicU64,
    ) {
        // Drivers stay attached to the service session: the encoders
        // pick it up via `m4ps_obs::current()` and hand it to every
        // pool scope, so queue waits and steals all land here.
        let _g = self.profiler.attach();
        loop {
            let (id, ready_since, mut session, weight, vt) = {
                let mut st = state.lock().unwrap();
                loop {
                    if let Some(i) = st.pick() {
                        let e = &mut st.entries[i];
                        let taken = std::mem::replace(&mut e.state, EntryState::Running);
                        let EntryState::Ready(since, session) = taken else {
                            unreachable!("pick() returns Ready entries only");
                        };
                        let (id, weight, vt) = (e.id, e.weight, e.vtime);
                        st.virtual_now = vt;
                        st.running += 1;
                        break (id, since, session, weight, vt);
                    }
                    if st.quiescent() {
                        return;
                    }
                    let (guard, _) = cv.wait_timeout(st, Duration::from_micros(500)).unwrap();
                    st = guard;
                }
            };
            let wait_ns = u64::try_from(ready_since.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.record(EventKind::FrameDispatch, id, vt, wait_ns);
            let frame_idx = session.frames_done() as u64;
            self.record(EventKind::FrameStart, id, frame_idx, 0);
            // A panicking codec task is an anomaly, not a service
            // crash: the session fails, its peers keep encoding.
            let result = catch_unwind(AssertUnwindSafe(|| session.step()));
            let latency = u64::try_from(ready_since.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.profiler
                .metric_histogram_record(MetricId::ServeFrameLatencyNs, latency);
            self.record(EventKind::FrameEnd, id, frame_idx, latency);
            if let Some(slo) = self.config.slo_ns {
                if latency > slo {
                    self.record(EventKind::SloBreach, id, latency, slo);
                    self.note_anomaly();
                }
            }
            let panicked = result.is_err();
            let mut st = state.lock().unwrap();
            st.running -= 1;
            st.frames += 1;
            let entry = st
                .entries
                .iter_mut()
                .find(|e| e.id == id)
                .expect("running entry present");
            match result {
                Err(payload) => {
                    entry.state = EntryState::Done;
                    self.record(EventKind::WorkerPanic, id, frame_idx, 0);
                    self.record(EventKind::SessionClose, id, outcome::FAILED, 0);
                    outcomes.lock().unwrap()[id] =
                        Some(SessionStatus::Failed(panic_message(&payload)));
                    failed.fetch_add(1, Ordering::Relaxed);
                }
                Ok(Err(e)) => {
                    entry.state = EntryState::Done;
                    self.record(EventKind::SessionClose, id, outcome::FAILED, 0);
                    outcomes.lock().unwrap()[id] = Some(SessionStatus::Failed(format!("{e:?}")));
                    failed.fetch_add(1, Ordering::Relaxed);
                }
                Ok(Ok(cost)) => {
                    entry.vtime += cost.max(1) * VT_SCALE / u64::from(weight.max(1));
                    if session.is_done() {
                        entry.state = EntryState::Done;
                        self.record(EventKind::SessionClose, id, outcome::COMPLETED, 0);
                        let (streams, stats, counters) = session.into_output();
                        outcomes.lock().unwrap()[id] = Some(SessionStatus::Completed {
                            streams,
                            stats,
                            counters,
                        });
                        completed.fetch_add(1, Ordering::Relaxed);
                    } else {
                        self.record(EventKind::FrameReady, id, frame_idx + 1, 0);
                        entry.state = EntryState::Ready(Instant::now(), session);
                    }
                }
            }
            let did_shed = self.maybe_shed(&mut st, outcomes, shed);
            self.profiler
                .metric_gauge_set(MetricId::ServeSessionsActive, st.active() as u64);
            drop(st);
            if panicked || did_shed {
                self.note_anomaly();
            }
            cv.notify_all();
        }
    }

    /// Sheds not-yet-started sessions while the queue-wait window's
    /// p99 exceeds the shed threshold: the largest-virtual-time (least
    /// entitled) pending session is cancelled per overload window.
    /// Returns whether a session was shed (an anomaly; the caller
    /// triggers the dump after releasing the scheduler lock).
    fn maybe_shed<M: ParallelModel + Send>(
        &self,
        st: &mut Sched<M>,
        outcomes: &Mutex<Vec<Option<SessionStatus>>>,
        shed: &AtomicU64,
    ) -> bool {
        let Some(threshold) = self.config.admission.shed_p99_ns else {
            return false;
        };
        let now = self.profiler.histogram_snapshot(MetricId::SliceQueueWaitNs);
        let mut anchor = self.shed_anchor.lock().unwrap();
        let window = now.delta_since(&anchor);
        if window.count < self.config.admission.min_window {
            return false;
        }
        *anchor = now;
        drop(anchor);
        let p99 = window.p99();
        if p99 <= threshold {
            return false;
        }
        let victim = st
            .entries
            .iter_mut()
            .filter(|e| matches!(&e.state, EntryState::Ready(_, s) if s.frames_done() == 0))
            .max_by_key(|e| (e.vtime, e.id));
        if let Some(victim) = victim {
            victim.state = EntryState::Done;
            self.record(EventKind::SessionShed, victim.id, p99, 0);
            self.record(EventKind::SessionClose, victim.id, outcome::SHED, 0);
            outcomes.lock().unwrap()[victim.id] = Some(SessionStatus::Shed);
            shed.fetch_add(1, Ordering::Relaxed);
            self.profiler
                .metric_counter_add(MetricId::ServeSessionsShed, 1);
            return true;
        }
        false
    }
}

/// Best-effort text of a captured panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m4ps_memsim::NullModel;

    fn null_batch(service: &Service, specs: Vec<SessionSpec>) -> ServiceReport {
        service.run_batch(specs, |_, _| NullModel::new(), |_, _| {})
    }

    #[test]
    fn batch_of_sixty_four_sessions_completes() {
        let service = Service::new(ServiceConfig {
            threads: 2,
            drivers: 4,
            sched: Some(Scheduling::SliceParallel),
            admission: AdmissionConfig::default(),
            ..ServiceConfig::default()
        });
        let specs: Vec<SessionSpec> = (0..64).map(|i| SessionSpec::tiny(i, 2)).collect();
        let report = null_batch(&service, specs);
        assert_eq!(report.completed, 64);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.shed, 0);
        assert_eq!(report.failed, 0);
        assert_eq!(report.frames, 128, "2 frame jobs per session");
        assert_eq!(
            report.frame_latency.count, 128,
            "one latency sample per frame job"
        );
        assert!(report.sessions_per_sec > 0.0);
        assert_eq!(report.outcomes.len(), 64);
        for (i, o) in report.outcomes.iter().enumerate() {
            assert_eq!(o.id, i);
            let SessionStatus::Completed { streams, stats, .. } = &o.status else {
                panic!("session {i} did not complete: {:?}", o.status);
            };
            assert_eq!(streams.len(), 1);
            assert_eq!(stats.frames, 2);
        }
    }

    #[test]
    fn admission_rejects_while_queue_wait_window_is_hot() {
        let service = Service::new(ServiceConfig {
            threads: 1,
            drivers: 1,
            sched: Some(Scheduling::SliceParallel),
            admission: AdmissionConfig {
                reject_p99_ns: Some(1_000),
                shed_p99_ns: None,
                min_window: 64,
            },
            ..ServiceConfig::default()
        });
        // Synthetic overload: a full decision window of 1 ms queue waits.
        for _ in 0..128 {
            service
                .profiler()
                .metric_histogram_record(MetricId::SliceQueueWaitNs, 1_000_000);
        }
        let specs: Vec<SessionSpec> = (0..4).map(|i| SessionSpec::tiny(i, 1)).collect();
        let report = null_batch(&service, specs);
        // The first submit sees the hot window and is rejected; the
        // rejection slides the window, so later (cheap) sessions pass.
        assert!(report.rejected >= 1, "hot window must reject");
        assert!(matches!(report.outcomes[0].status, SessionStatus::Rejected));
        assert_eq!(report.completed + report.rejected, 4);
        assert_eq!(
            service
                .profiler()
                .metric_counter_value(MetricId::ServeSessionsRejected),
            report.rejected
        );
    }

    #[test]
    fn overload_sheds_zero_progress_sessions() {
        let service = Service::new(ServiceConfig {
            threads: 2,
            drivers: 1,
            sched: Some(Scheduling::SliceParallel),
            admission: AdmissionConfig {
                reject_p99_ns: None,
                // Any nonzero queue wait counts as overload.
                shed_p99_ns: Some(0),
                min_window: 1,
            },
            ..ServiceConfig::default()
        });
        let specs: Vec<SessionSpec> = (0..8).map(|i| SessionSpec::tiny(i, 2)).collect();
        let report = null_batch(&service, specs);
        assert!(report.shed >= 1, "sustained overload must shed");
        assert_eq!(
            report.completed + report.shed + report.failed,
            8,
            "every session resolves"
        );
        let shed_ids: Vec<usize> = report
            .outcomes
            .iter()
            .filter(|o| matches!(o.status, SessionStatus::Shed))
            .map(|o| o.id)
            .collect();
        assert_eq!(shed_ids.len() as u64, report.shed);
    }

    #[test]
    fn open_loop_arrivals_complete() {
        let service = Service::new(ServiceConfig {
            threads: 2,
            drivers: 2,
            sched: Some(Scheduling::Wavefront),
            admission: AdmissionConfig::default(),
            ..ServiceConfig::default()
        });
        let arrivals: Vec<(Duration, SessionSpec)> = (0..4)
            .map(|i| (Duration::from_millis(i), SessionSpec::tiny(i, 2)))
            .collect();
        let report = service.run_open_loop(arrivals, |_, _| NullModel::new(), |_, _| {});
        assert_eq!(report.completed, 4);
        assert!(
            report.wall >= Duration::from_millis(3),
            "arrivals pace the run"
        );
    }

    #[test]
    fn weight_advances_virtual_time_proportionally() {
        // Entry arithmetic: equal cost, 4x weight -> quarter the vtime.
        let mut heavy = Entry::<NullModel> {
            id: 0,
            weight: 4,
            vtime: 0,
            state: EntryState::Done,
        };
        let mut light = Entry::<NullModel> {
            id: 1,
            weight: 1,
            vtime: 0,
            state: EntryState::Done,
        };
        let cost = 4096u64;
        heavy.vtime += cost * VT_SCALE / u64::from(heavy.weight);
        light.vtime += cost * VT_SCALE / u64::from(light.weight);
        assert_eq!(light.vtime, 4 * heavy.vtime);
    }
}
