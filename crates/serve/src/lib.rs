//! `m4ps-serve` — a long-running multi-session MPEG-4 encoding service.
//!
//! The paper's study encodes one scene at a time; this crate asks the
//! server-consolidation question instead: how many *concurrent* encode
//! sessions can one general-purpose machine sustain, and at what frame
//! latency? It multiplexes hundreds of [`session::Session`]s — each
//! with its own scene, encoder arenas and forked memory model — over a
//! single persistent work-stealing [`m4ps_pool::WorkerPool`], with:
//!
//! - **Weighted fair queueing** at frame-job granularity
//!   ([`service::Service`]): virtual time advances by encoded bytes
//!   over session weight, so heavier sessions get proportionally more
//!   of the pool.
//! - **Admission control** driven by `obs` metrics: new sessions are
//!   rejected — and, under sustained overload, pending ones shed —
//!   when the shared pool's `slice_queue_wait_ns` windowed p99
//!   crosses configured thresholds.
//! - **A throughput harness**: the `m4ps-loadgen` binary generates
//!   open- or closed-loop session arrivals and reports sessions/sec
//!   plus p50/p99 frame latency from `obs` histograms.
//!
//! The cardinal invariant is unchanged from the rest of the workspace:
//! multiplexing never changes what any session computes. Every
//! session's bitstream and merged counters are bit-identical to
//! encoding that session alone, at any session/driver/thread count.

pub mod service;
pub mod session;

pub use service::{
    AdmissionConfig, Service, ServiceConfig, ServiceReport, SessionOutcome, SessionStatus,
};
pub use session::{Session, SessionMode, SessionSpec};
