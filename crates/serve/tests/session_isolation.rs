//! Session-isolation determinism suite: a session encoded by the
//! multi-session service — any session count, driver count, pool width
//! or scheduling mode — produces the *bit-identical* streams and
//! memory-model counters of encoding that session alone.
//!
//! This is the service-level extension of the workspace's cardinal
//! invariant (bitstream and counters independent of thread count and
//! scheduling): multiplexing adds interleaving, work stealing and
//! shared deques, but must never add observable state.

use std::sync::Arc;

use m4ps_codec::{EncoderConfig, Scheduling};
use m4ps_memsim::{Counters, Hierarchy, MachineSpec, NullModel};
use m4ps_pool::WorkerPool;
use m4ps_serve::{AdmissionConfig, Service, ServiceConfig, Session, SessionSpec, SessionStatus};

/// A small spec mix covering rectangular, shaped and scalable sessions.
fn spec_mix() -> Vec<SessionSpec> {
    let shaped = SessionSpec {
        objects: 1,
        ..SessionSpec::tiny(11, 2)
    };
    let scalable = SessionSpec {
        layers: 2,
        ..SessionSpec::tiny(23, 2)
    };
    let unsliced = SessionSpec {
        encoder: EncoderConfig::fast_test(),
        ..SessionSpec::tiny(31, 3)
    };
    vec![SessionSpec::tiny(5, 3), shaped, scalable, unsliced]
}

/// Encodes `spec` alone on a private single-thread pool and returns
/// its streams and counters — the reference the service must match.
fn solo_hierarchy(spec: &SessionSpec, sched: Scheduling) -> (Vec<Vec<u8>>, Counters) {
    let pool = Arc::new(WorkerPool::new(1));
    let mut s = Session::new(
        spec.clone(),
        Hierarchy::new(MachineSpec::o2()),
        pool,
        Some(sched),
        |space, mem| mem.attach_regions(space.regions()),
    )
    .expect("solo session builds");
    while !s.is_done() {
        s.step().expect("solo step");
    }
    let (streams, _, counters) = s.into_output();
    (streams, counters)
}

fn solo_null(spec: &SessionSpec, sched: Scheduling) -> Vec<Vec<u8>> {
    let pool = Arc::new(WorkerPool::new(1));
    let mut s = Session::new(spec.clone(), NullModel::new(), pool, Some(sched), |_, _| {})
        .expect("solo session builds");
    while !s.is_done() {
        s.step().expect("solo step");
    }
    s.into_output().0
}

/// The tentpole sweep: the spec mix through the service at several
/// (drivers, threads) × scheduling points, every outcome compared
/// bit-for-bit (streams *and* counters) against its solo reference.
#[test]
fn concurrent_sessions_match_solo_hierarchy_runs() {
    let sweep = [
        (2, 1, Scheduling::SliceParallel),
        (4, 2, Scheduling::SliceParallel),
        (2, 2, Scheduling::Wavefront),
        (3, 4, Scheduling::Wavefront),
    ];
    for (drivers, threads, sched) in sweep {
        let specs = spec_mix();
        let refs: Vec<(Vec<Vec<u8>>, Counters)> =
            specs.iter().map(|s| solo_hierarchy(s, sched)).collect();
        let service = Service::new(ServiceConfig {
            threads,
            drivers,
            sched: Some(sched),
            admission: AdmissionConfig::default(),
            ..ServiceConfig::default()
        });
        let report = service.run_batch(
            specs,
            |_, _| Hierarchy::new(MachineSpec::o2()),
            |space, mem| mem.attach_regions(space.regions()),
        );
        assert_eq!(report.completed, 4, "drivers={drivers} threads={threads}");
        for (outcome, (ref_streams, ref_counters)) in report.outcomes.iter().zip(&refs) {
            let SessionStatus::Completed {
                streams, counters, ..
            } = &outcome.status
            else {
                panic!("session {} not completed: {:?}", outcome.id, outcome.status);
            };
            assert_eq!(
                streams, ref_streams,
                "bitstream diverged: session {} drivers={drivers} threads={threads} sched={sched:?}",
                outcome.id
            );
            assert_eq!(
                counters, ref_counters,
                "counters diverged: session {} drivers={drivers} threads={threads} sched={sched:?}",
                outcome.id
            );
        }
    }
}

/// 64 concurrent sessions (4 distinct contents × 16 replicas each):
/// every replica reproduces its solo bitstream byte-for-byte, so
/// identical-content sessions sharing one pool cannot alias state.
#[test]
fn sixty_four_sessions_are_bit_identical_to_solo() {
    let sched = Scheduling::SliceParallel;
    let refs: Vec<Vec<Vec<u8>>> = (0..4)
        .map(|seed| solo_null(&SessionSpec::tiny(seed, 2), sched))
        .collect();
    let service = Service::new(ServiceConfig {
        threads: 4,
        drivers: 8,
        sched: Some(sched),
        admission: AdmissionConfig::default(),
        ..ServiceConfig::default()
    });
    let specs: Vec<SessionSpec> = (0..64).map(|i| SessionSpec::tiny(i % 4, 2)).collect();
    let report = service.run_batch(specs, |_, _| NullModel::new(), |_, _| {});
    assert_eq!(report.completed, 64);
    for outcome in &report.outcomes {
        let SessionStatus::Completed { streams, .. } = &outcome.status else {
            panic!("session {} not completed", outcome.id);
        };
        assert_eq!(
            streams,
            &refs[outcome.id % 4],
            "session {} diverged from its solo reference",
            outcome.id
        );
    }
}

/// Decode-replay sessions through the service: every session's merged
/// VOP stats and memory-model counters match replaying its streams
/// alone, at any driver/pool width — the decode side of the isolation
/// invariant (loadgen `--mode decode` runs exactly this path).
#[test]
fn decode_sessions_match_solo_replays() {
    let specs: Vec<SessionSpec> = (0..4)
        .map(|seed| {
            SessionSpec::tiny(40 + seed, 3)
                .into_decode()
                .expect("pre-encode replay streams")
        })
        .collect();
    let refs: Vec<(m4ps_codec::SessionStats, Counters)> = specs
        .iter()
        .map(|spec| {
            let pool = Arc::new(WorkerPool::new(1));
            let mut s = Session::new(
                spec.clone(),
                Hierarchy::new(MachineSpec::o2()),
                pool,
                Some(Scheduling::SliceParallel),
                |space, mem| mem.attach_regions(space.regions()),
            )
            .expect("solo decode session builds");
            while !s.is_done() {
                s.step().expect("solo decode step");
            }
            let (streams, stats, counters) = s.into_output();
            assert!(streams.is_empty());
            (stats, counters)
        })
        .collect();
    for (drivers, threads) in [(2, 1), (3, 2), (2, 4)] {
        let service = Service::new(ServiceConfig {
            threads,
            drivers,
            sched: Some(Scheduling::SliceParallel),
            admission: AdmissionConfig::default(),
            ..ServiceConfig::default()
        });
        let report = service.run_batch(
            specs.clone(),
            |_, _| Hierarchy::new(MachineSpec::o2()),
            |space, mem| mem.attach_regions(space.regions()),
        );
        assert_eq!(report.completed, 4, "drivers={drivers} threads={threads}");
        for (outcome, (ref_stats, ref_counters)) in report.outcomes.iter().zip(&refs) {
            let SessionStatus::Completed {
                streams,
                stats,
                counters,
                ..
            } = &outcome.status
            else {
                panic!("session {} not completed: {:?}", outcome.id, outcome.status);
            };
            assert!(streams.is_empty(), "decode sessions produce no streams");
            assert_eq!(
                stats, ref_stats,
                "decode stats diverged: session {} drivers={drivers} threads={threads}",
                outcome.id
            );
            assert_eq!(
                counters, ref_counters,
                "decode counters diverged: session {} drivers={drivers} threads={threads}",
                outcome.id
            );
        }
    }
}

/// Weighted sessions still match their solo references: WFQ reorders
/// work but never alters it.
#[test]
fn weights_reorder_but_never_change_output() {
    let sched = Scheduling::Wavefront;
    let mut specs: Vec<SessionSpec> = (0..6).map(|i| SessionSpec::tiny(i, 2)).collect();
    for (i, s) in specs.iter_mut().enumerate() {
        s.weight = 1 + (i as u32 % 3) * 4;
    }
    let refs: Vec<Vec<Vec<u8>>> = specs.iter().map(|s| solo_null(s, sched)).collect();
    let service = Service::new(ServiceConfig {
        threads: 2,
        drivers: 3,
        sched: Some(sched),
        admission: AdmissionConfig::default(),
        ..ServiceConfig::default()
    });
    let report = service.run_batch(specs, |_, _| NullModel::new(), |_, _| {});
    assert_eq!(report.completed, 6);
    for (outcome, r) in report.outcomes.iter().zip(&refs) {
        let SessionStatus::Completed { streams, .. } = &outcome.status else {
            panic!("session {} not completed", outcome.id);
        };
        assert_eq!(streams, r, "weighted session {} diverged", outcome.id);
    }
}
