//! Anomaly-triggered flight dumps: when the service sheds, rejects, or
//! breaches a frame-latency SLO, it must write exactly one dump per
//! run whose JSONL parses and whose event stream actually explains the
//! anomaly (the triggering events are present with their payloads).

use m4ps_memsim::NullModel;
use m4ps_obs::{outcome, Dump, EventKind};
use m4ps_serve::{AdmissionConfig, Service, ServiceConfig, SessionSpec};

fn tmp_dir(tag: &str) -> String {
    let dir = std::env::temp_dir().join(format!("m4ps-flight-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create dump dir");
    dir.to_string_lossy().into_owned()
}

fn run_batch(service: &Service, specs: Vec<SessionSpec>) -> m4ps_serve::ServiceReport {
    service.run_batch(specs, |_, _| NullModel::new(), |_, _| {})
}

fn load_dump(path: &str) -> Dump {
    let text = std::fs::read_to_string(path).expect("dump file readable");
    Dump::from_jsonl(&text).expect("dump parses")
}

/// A zero-tolerance shed threshold forces an anomaly on the first
/// admission window; the dump must exist, parse, and contain the shed
/// decision with its triggering p99 plus the shed session's close.
#[test]
fn forced_shed_writes_parseable_dump() {
    let dir = tmp_dir("shed");
    let service = Service::new(ServiceConfig {
        threads: 2,
        drivers: 1,
        admission: AdmissionConfig {
            reject_p99_ns: None,
            shed_p99_ns: Some(0),
            min_window: 1,
        },
        dump_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    });
    let report = run_batch(&service, (0..8).map(|i| SessionSpec::tiny(i, 2)).collect());
    assert!(report.shed > 0, "zero threshold must shed: {report:?}");
    let dump_path = report.dump.as_deref().expect("anomaly must produce a dump");
    assert!(dump_path.starts_with(&dir), "dump in the configured dir");
    let dump = load_dump(dump_path);
    let shed_session = dump
        .events
        .iter()
        .find(|e| e.ev.kind == EventKind::SessionShed)
        .expect("shed event recorded")
        .ev
        .session;
    assert!(
        dump.events
            .iter()
            .any(|e| e.ev.kind == EventKind::SessionClose
                && e.ev.session == shed_session
                && e.ev.a == outcome::SHED),
        "shed session {shed_session} must close with the shed outcome"
    );
    // Lifecycle events for the run are there too.
    for kind in [EventKind::SessionSubmit, EventKind::SessionOpen] {
        assert!(dump.events.iter().any(|e| e.ev.kind == kind));
    }
    // The companion Chrome trace was written next to the JSONL.
    let trace_path = dump_path.replace(".jsonl", ".trace.json");
    let trace = std::fs::read_to_string(&trace_path).expect("trace next to dump");
    assert!(trace.contains("\"traceEvents\""));
    std::fs::remove_dir_all(&dir).ok();
}

/// An unmeetable SLO (1 ns) trips on the first completed frame; the
/// dump carries the breach with latency and threshold payloads.
#[test]
fn slo_breach_writes_dump_with_latency_payload() {
    let dir = tmp_dir("slo");
    let service = Service::new(ServiceConfig {
        threads: 2,
        drivers: 2,
        slo_ns: Some(1),
        dump_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    });
    let report = run_batch(&service, (0..4).map(|i| SessionSpec::tiny(i, 2)).collect());
    assert_eq!(report.completed, 4, "SLO breaches must not fail sessions");
    let dump = load_dump(report.dump.as_deref().expect("breach must produce a dump"));
    let breach = dump
        .events
        .iter()
        .find(|e| e.ev.kind == EventKind::SloBreach)
        .expect("breach event recorded");
    assert!(breach.ev.a > 1, "latency payload present");
    assert_eq!(breach.ev.b, 1, "threshold payload is the configured SLO");
    std::fs::remove_dir_all(&dir).ok();
}

/// One dump per run: a run full of anomalies still snapshots exactly
/// once (the first), and the next run re-arms.
#[test]
fn dump_throttle_is_one_per_run_and_rearms() {
    let dir = tmp_dir("throttle");
    let service = Service::new(ServiceConfig {
        threads: 2,
        drivers: 2,
        slo_ns: Some(1),
        dump_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    });
    let r1 = run_batch(&service, (0..4).map(|i| SessionSpec::tiny(i, 2)).collect());
    let r2 = run_batch(&service, (0..4).map(|i| SessionSpec::tiny(i, 2)).collect());
    let d1 = r1.dump.expect("first run dumps");
    let d2 = r2.dump.expect("second run dumps");
    assert_ne!(d1, d2, "each run writes its own dump");
    let jsonl_count = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .filter(|e| e.file_name().to_string_lossy().ends_with(".jsonl"))
        .count();
    assert_eq!(jsonl_count, 2, "one dump per run, not per anomaly");
    std::fs::remove_dir_all(&dir).ok();
}
