//! Flight-recorder contracts: ring overflow semantics under arbitrary
//! event sequences, and a pinned golden dump round-tripping through
//! JSONL and the Chrome-trace export.
//!
//! Runs on the in-tree [`m4ps_testkit::prop`] harness; failures print a
//! replayable seed (`M4PS_PROP_REPLAY=0x...`).

use m4ps_obs::{Dump, DumpEvent, Event, EventKind, Recorder, RingInfo, NO_SESSION};
use m4ps_testkit::prop::{check, Config};
use m4ps_testkit::rng::Rng;
use m4ps_testkit::{prop_assert, prop_assert_eq};

/// A random overflow scenario: a small ring capacity and more (or
/// fewer) events than fit.
#[derive(Debug)]
struct Overflow {
    capacity: usize,
    events: usize,
}

fn overflow_case(rng: &mut Rng) -> Overflow {
    Overflow {
        capacity: rng.gen_range(1usize..=48),
        events: rng.gen_range(0usize..=160),
    }
}

/// The ring keeps exactly the newest `capacity` events in submission
/// order and counts every displaced event — no reordering, no silent
/// loss, no off-by-one at the wrap boundary.
#[test]
fn overflow_drops_oldest_keeps_order_counts_exactly() {
    check(
        "overflow_drops_oldest_keeps_order_counts_exactly",
        &Config::with_cases(64),
        overflow_case,
        |case| {
            let rec = Recorder::new(case.capacity);
            for i in 0..case.events {
                // `a` carries the submission index so survivors are
                // identifiable regardless of timestamps.
                rec.record(EventKind::FrameEnd, Some(7), i as u64, 0);
            }
            let dump = rec.snapshot();
            let expect_dropped = case.events.saturating_sub(case.capacity) as u64;
            prop_assert_eq!(dump.events_dropped, expect_dropped);
            prop_assert_eq!(dump.events.len(), case.events.min(case.capacity));
            // Survivors are exactly the newest suffix, still in order.
            let first_kept = expect_dropped;
            for (slot, e) in dump.events.iter().enumerate() {
                prop_assert_eq!(e.ev.a, first_kept + slot as u64);
            }
            // Timestamps never run backwards within the merged dump of
            // a single ring.
            prop_assert!(dump
                .events
                .windows(2)
                .all(|w| w[0].ev.ts_ns <= w[1].ev.ts_ns));
            Ok(())
        },
    );
}

/// A fixed dump covering every lane type the exporter knows: one
/// admission decision, one full frame lifecycle in a session lane, one
/// coarse phase pair and pool traffic in a worker lane.
fn golden_dump() -> Dump {
    let ev = |tid: u32, ts_ns: u64, kind: EventKind, session: u32, a: u64, b: u64| DumpEvent {
        tid,
        ev: Event {
            ts_ns,
            kind,
            session,
            a,
            b,
        },
    };
    Dump {
        capacity: 16,
        events_dropped: 3,
        rings: vec![
            RingInfo {
                tid: 0,
                name: "main".to_string(),
                dropped: 3,
            },
            RingInfo {
                tid: 1,
                name: "m4ps-worker-0".to_string(),
                dropped: 0,
            },
        ],
        events: vec![
            ev(0, 1_000, EventKind::SessionSubmit, 4, 0, 0),
            ev(0, 1_500, EventKind::SessionOpen, 4, 2, 0),
            ev(0, 1_600, EventKind::FrameReady, 4, 0, 0),
            ev(1, 2_000, EventKind::PhaseEnter, NO_SESSION, 1, 0),
            ev(0, 2_200, EventKind::FrameDispatch, 4, 1024, 600),
            ev(0, 2_300, EventKind::FrameStart, 4, 0, 0),
            ev(1, 4_000, EventKind::PhaseExit, NO_SESSION, 1, 0),
            ev(1, 4_100, EventKind::PoolSteal, NO_SESSION, 0, 0),
            ev(0, 5_000, EventKind::FrameEnd, 4, 0, 3_400),
            ev(0, 5_100, EventKind::AdmitReject, 9, 77_000, 0),
            ev(0, 5_200, EventKind::SessionClose, 4, 0, 0),
        ],
    }
}

/// JSONL serialization is lossless: parse(serialize(dump)) == dump,
/// including ring metadata and the drop counter.
#[test]
fn golden_dump_jsonl_round_trips() {
    let dump = golden_dump();
    let text = dump.to_jsonl();
    let back = Dump::from_jsonl(&text).expect("golden dump must parse");
    assert_eq!(back, dump);
    // A second generation is byte-stable (no map-iteration drift).
    assert_eq!(back.to_jsonl(), text);
}

/// The Chrome-trace export of the golden dump carries every lane the
/// viewer needs: a named session lane with the frame span, the worker
/// lane with the phase span, and the admission instants.
#[test]
fn golden_dump_chrome_trace_has_expected_lanes() {
    let dump = golden_dump();
    let trace = dump.to_chrome_trace().pretty();
    for needle in [
        "\"session-4\"",       // session lane metadata
        "\"m4ps-worker-0\"",   // worker lane metadata
        "\"admission\"",       // admission lane metadata
        "\"frame 0\"",         // FrameDispatch..FrameEnd span
        "\"admit.reject s9\"", // admission instant, tagged with session
        "\"pool.steal\"",      // worker instant
        "\"X\"",               // at least one complete span
        "\"i\"",               // at least one instant
    ] {
        assert!(
            trace.contains(needle),
            "chrome trace missing {needle}:\n{trace}"
        );
    }
}
