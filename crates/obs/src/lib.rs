//! SpeedShop-style in-process profiler.
//!
//! The paper's methodology is *attribution*: SpeedShop and Perfex break
//! machine-wide event counts down per function, which is how McKee et
//! al. show that motion estimation and DCT blocking — not streaming —
//! dominate MPEG-4 memory behaviour. This crate reproduces that layer
//! for the simulated hierarchy: phase-attributed [`Counters`] profiles,
//! a small metrics registry, and Chrome trace-event export, all with
//! zero registry dependencies.
//!
//! # Span model
//!
//! A span is an `enter`/`exit` pair around a region of code, tagged
//! with a [`Phase`] and carrying a snapshot of the memory model's
//! [`Counters`] at each end (the [`span!`] macro wraps this). Spans
//! nest on a per-thread stack; attribution is *exclusive*: each span's
//! inclusive counter delta is added to its own phase and subtracted
//! from its parent's, so the per-phase totals partition the run and
//! sum exactly — bit-for-bit, every field — to the aggregate counters.
//! Subtraction uses wrapping arithmetic: a parent's accumulator can be
//! transiently "negative" (wrapped) between a child's exit and its own,
//! but every final sum telescopes back to an exact non-negative value.
//!
//! Wall-clock time (`Instant`) is only sampled for the coarse phases
//! ([`Phase::is_coarse`]) — a few hundred spans per run — so the
//! per-macroblock fine phases cost two counter snapshots and ~40
//! word-sized arithmetic ops per span, and nothing at all when no
//! [`Profiler`] is installed (see [`enabled`]).
//!
//! # Attribution under `fork`/`absorb`
//!
//! Slice-parallel encoding forks the memory model per slice
//! (`ParallelModel::fork`) and folds child counters back with
//! `absorb`. Two primitives keep per-phase totals exact across that
//! boundary:
//!
//! * **Domain spans** ([`enter_domain`]/[`exit_domain`]) wrap code
//!   that charges a *forked* counter stream. They attribute like
//!   regular spans but never subtract from the lexical parent — the
//!   parent frame belongs to a different counter stream.
//! * **[`absorbed`]** is called right after `absorb` folds a child's
//!   total `ctot` into the parent stream; it subtracts `ctot` from the
//!   parent's innermost open phase. The child's profile contributed
//!   `ctot` distributed across phases, so the grand total telescopes
//!   to exactly the merged aggregate — identically for inline
//!   (1-worker) and multi-threaded execution.
//!
//! # Threads
//!
//! Each thread that participates calls [`Profiler::attach`] and keeps
//! the guard alive; dropping it merges the thread's [`PhaseProfile`]
//! and trace events into the session. Attach is reentrant on the same
//! session (a 1-worker pool runs slice jobs inline on an
//! already-attached caller) and a no-op for a different session.

//! # Flight recorder
//!
//! Orthogonal to counter attribution, [`Recorder`] keeps an always-on
//! per-thread ring of compact service events (frame lifecycle, WFQ
//! picks, admission decisions, pool steal/park/wake, coarse phases)
//! that [`Recorder::snapshot`] turns into a [`Dump`] — JSONL plus a
//! Chrome trace with one lane per session and per worker. The
//! `m4ps-obs` binary analyzes dumps offline; see `recorder.rs` and
//! DESIGN.md §15.

mod metrics;
mod phase;
mod profile;
mod profiler;
mod recorder;
mod trace;

pub use metrics::{HistogramSnapshot, MetricId, MetricKind};
pub use phase::Phase;
pub use profile::{PhaseProfile, PhaseStats};
pub use profiler::{
    absorbed, counter_add, current, enabled, enter, enter_domain, exit, exit_domain, gauge_set,
    histogram_record, AttachGuard, Profiler,
};
pub use recorder::{
    outcome, Dump, DumpEvent, Event, EventKind, Recorder, RingInfo, DEFAULT_RING_CAPACITY,
    NO_SESSION,
};
pub use trace::TraceEvent;

/// Re-export: spans snapshot this type; consumers that only depend on
/// `m4ps-obs` (the pool) can still name it.
pub use m4ps_memsim::Counters;

/// Wraps `$body` in a counter-snapshotting span over `$mem` (anything
/// with a `counters() -> &Counters` method, i.e. a `memsim::MemModel`).
///
/// The enabled check is hoisted and cached so enter/exit stay balanced
/// even if another thread's session starts or ends mid-span, and the
/// 88-byte counter snapshot is skipped entirely when no profiler is
/// installed anywhere in the process.
///
/// `$body` is an expression/block whose value the macro returns. Do
/// not `return` or `?` out of the body — exit the span first (have the
/// body evaluate to a `Result` and apply `?` to the macro's value).
#[macro_export]
macro_rules! span {
    ($mem:expr, $phase:expr, $body:expr) => {{
        let __obs_on = $crate::enabled();
        if __obs_on {
            $crate::enter($phase, *$mem.counters());
        }
        let __obs_out = $body;
        if __obs_on {
            $crate::exit($phase, *$mem.counters());
        }
        __obs_out
    }};
}
