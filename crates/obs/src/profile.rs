//! Per-phase accumulated statistics.

use crate::phase::Phase;
use m4ps_memsim::Counters;

/// Statistics accumulated for one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseStats {
    /// Exclusive counter delta attributed to this phase. Transiently
    /// wrapped (see crate docs) while spans are open; exact once every
    /// span has closed.
    pub counters: Counters,
    /// Wall-clock nanoseconds (coarse phases only; 0 for fine phases).
    pub wall_ns: u64,
    /// Number of spans that closed on this phase.
    pub entries: u64,
}

/// A full per-phase profile: one [`PhaseStats`] per [`Phase`].
///
/// Profiles merge commutatively (plain wrapping addition field by
/// field), so per-thread profiles can be folded in any order — the
/// same property `Counters::merge` gives the parallel memory model.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PhaseProfile {
    stats: [PhaseStats; Phase::COUNT],
}

impl PhaseProfile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// The stats accumulated for `phase`.
    pub fn get(&self, phase: Phase) -> &PhaseStats {
        &self.stats[phase as usize]
    }

    pub(crate) fn get_mut(&mut self, phase: Phase) -> &mut PhaseStats {
        &mut self.stats[phase as usize]
    }

    /// Iterates phases in display order with their stats.
    pub fn iter(&self) -> impl Iterator<Item = (Phase, &PhaseStats)> {
        Phase::ALL
            .iter()
            .map(move |&p| (p, &self.stats[p as usize]))
    }

    /// Folds `other` into `self` (wrapping, commutative).
    pub fn merge(&mut self, other: &PhaseProfile) {
        for (dst, src) in self.stats.iter_mut().zip(other.stats.iter()) {
            add_wrapping(&mut dst.counters, &src.counters);
            dst.wall_ns = dst.wall_ns.wrapping_add(src.wall_ns);
            dst.entries = dst.entries.wrapping_add(src.entries);
        }
    }

    /// Sum of every phase's exclusive counters. Once all spans have
    /// closed and all threads detached, this equals the run's aggregate
    /// [`Counters`] exactly (that invariant is what the attribution
    /// algebra exists to provide, and what the tier-1 property tests
    /// pin).
    pub fn total(&self) -> Counters {
        let mut out = Counters::default();
        for s in &self.stats {
            add_wrapping(&mut out, &s.counters);
        }
        out
    }
}

/// `dst += d`, wrapping per field.
pub(crate) fn add_wrapping(dst: &mut Counters, d: &Counters) {
    dst.loads = dst.loads.wrapping_add(d.loads);
    dst.stores = dst.stores.wrapping_add(d.stores);
    dst.prefetches = dst.prefetches.wrapping_add(d.prefetches);
    dst.prefetch_l1_hits = dst.prefetch_l1_hits.wrapping_add(d.prefetch_l1_hits);
    dst.l1_misses = dst.l1_misses.wrapping_add(d.l1_misses);
    dst.l1_writebacks = dst.l1_writebacks.wrapping_add(d.l1_writebacks);
    dst.l2_misses = dst.l2_misses.wrapping_add(d.l2_misses);
    dst.l2_writebacks = dst.l2_writebacks.wrapping_add(d.l2_writebacks);
    dst.tlb_misses = dst.tlb_misses.wrapping_add(d.tlb_misses);
    dst.compute_ops = dst.compute_ops.wrapping_add(d.compute_ops);
    dst.bytes_accessed = dst.bytes_accessed.wrapping_add(d.bytes_accessed);
}

/// `dst -= d`, wrapping per field. Wrapped intermediates are expected
/// (exclusive attribution subtracts a child's delta from a parent whose
/// own span has not closed yet); final sums telescope back to exact
/// values.
pub(crate) fn sub_wrapping(dst: &mut Counters, d: &Counters) {
    dst.loads = dst.loads.wrapping_sub(d.loads);
    dst.stores = dst.stores.wrapping_sub(d.stores);
    dst.prefetches = dst.prefetches.wrapping_sub(d.prefetches);
    dst.prefetch_l1_hits = dst.prefetch_l1_hits.wrapping_sub(d.prefetch_l1_hits);
    dst.l1_misses = dst.l1_misses.wrapping_sub(d.l1_misses);
    dst.l1_writebacks = dst.l1_writebacks.wrapping_sub(d.l1_writebacks);
    dst.l2_misses = dst.l2_misses.wrapping_sub(d.l2_misses);
    dst.l2_writebacks = dst.l2_writebacks.wrapping_sub(d.l2_writebacks);
    dst.tlb_misses = dst.tlb_misses.wrapping_sub(d.tlb_misses);
    dst.compute_ops = dst.compute_ops.wrapping_sub(d.compute_ops);
    dst.bytes_accessed = dst.bytes_accessed.wrapping_sub(d.bytes_accessed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use m4ps_testkit::rng::Rng;

    fn random_counters(rng: &mut Rng) -> Counters {
        Counters {
            loads: rng.next_u64() >> 16,
            stores: rng.next_u64() >> 16,
            prefetches: rng.next_u64() >> 48,
            prefetch_l1_hits: rng.next_u64() >> 48,
            l1_misses: rng.next_u64() >> 32,
            l1_writebacks: rng.next_u64() >> 40,
            l2_misses: rng.next_u64() >> 40,
            l2_writebacks: rng.next_u64() >> 48,
            tlb_misses: rng.next_u64() >> 48,
            compute_ops: rng.next_u64() >> 16,
            bytes_accessed: rng.next_u64() >> 14,
        }
    }

    #[test]
    fn add_sub_are_inverses() {
        let mut rng = Rng::new(0xab5e_11e5);
        for _ in 0..100 {
            let base = random_counters(&mut rng);
            let d = random_counters(&mut rng);
            let mut c = base;
            add_wrapping(&mut c, &d);
            sub_wrapping(&mut c, &d);
            assert_eq!(c, base);
        }
    }

    #[test]
    fn merge_is_commutative_and_associative() {
        let mut rng = Rng::new(0x0b5_cafe);
        for _ in 0..50 {
            let mut profiles = [
                PhaseProfile::new(),
                PhaseProfile::new(),
                PhaseProfile::new(),
            ];
            for p in &mut profiles {
                for phase in Phase::ALL {
                    let s = p.get_mut(phase);
                    s.counters = random_counters(&mut rng);
                    s.wall_ns = rng.next_u64() >> 30;
                    s.entries = rng.next_u64() >> 50;
                }
            }
            let [a, b, c] = profiles;

            let mut abc = a.clone();
            abc.merge(&b);
            abc.merge(&c);
            let mut cba = c.clone();
            cba.merge(&b);
            cba.merge(&a);
            let mut a_bc = {
                let mut bc = b.clone();
                bc.merge(&c);
                bc
            };
            a_bc.merge(&a);
            assert_eq!(abc, cba);
            assert_eq!(abc, a_bc);

            // total() distributes over merge.
            let mut total_sum = a.total();
            add_wrapping(&mut total_sum, &b.total());
            add_wrapping(&mut total_sum, &c.total());
            assert_eq!(abc.total(), total_sum);
        }
    }
}
