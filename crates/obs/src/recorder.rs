//! Always-on flight recorder: per-thread fixed-capacity event rings.
//!
//! The profiler (PR 4) answers *where counters went*; the recorder
//! answers *what the service did and when*. Every participating thread
//! owns a fixed-capacity ring of compact binary [`Event`]s — frame-job
//! lifecycle, WFQ picks with their virtual time, admission rejects and
//! sheds with the triggering p99, pool steal/park/wake, session
//! open/close, coarse phase enter/exit. Recording is drop-oldest: under
//! overload the newest events survive, memory stays bounded at
//! `capacity × 40 bytes` per thread, and every displaced event is
//! tallied in an explicit `events_dropped` counter so a dump can never
//! silently pretend to be complete.
//!
//! On an anomaly (shed, reject, SLO breach, worker panic — see
//! `m4ps-serve`) the rings are snapshotted into a [`Dump`]: a JSONL
//! document (one self-describing object per event) plus a Chrome
//! trace-event export with one lane per session and one per worker,
//! built on the PR 4 `trace` writer. `m4ps-obs` analyzes dumps offline.
//!
//! # Hot-path cost
//!
//! [`Recorder::record`] is one thread-local lookup, one `Instant`
//! sample, and one push into the calling thread's own ring behind an
//! uncontended mutex (only a snapshot ever contends). Events are
//! recorded at service/scheduler granularity (per frame job, per steal,
//! per coarse phase) — never per macroblock — so the recorder-on
//! encode overhead is gated in CI at ≤ 8% next to the profiler's ≤ 8%.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::Instant;

use crate::trace::{chrome_trace_json, TraceEvent};
use m4ps_testkit::json::Json;

/// `session` value for events not tied to any session.
pub const NO_SESSION: u32 = u32::MAX;

/// `session.close` outcome codes carried in the event's `a` payload,
/// shared between the recording service and offline analyzers.
pub mod outcome {
    /// Encoded every frame.
    pub const COMPLETED: u64 = 0;
    /// Refused at submit by admission control.
    pub const REJECTED: u64 = 1;
    /// Admitted, then cancelled under sustained overload.
    pub const SHED: u64 = 2;
    /// Ended early by a codec error or worker panic.
    pub const FAILED: u64 = 3;

    /// Human name for an outcome code (`"?"` when out of range).
    pub fn name(code: u64) -> &'static str {
        match code {
            COMPLETED => "completed",
            REJECTED => "rejected",
            SHED => "shed",
            FAILED => "failed",
            _ => "?",
        }
    }
}

/// Default ring capacity (events per thread) when a caller does not
/// choose one: 4096 × 40 B = 160 KiB per participating thread.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// What happened. Payload fields `a`/`b` are per-kind (documented on
/// each variant); `session` is the service session id or [`NO_SESSION`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A session arrived at the service (before admission).
    SessionSubmit,
    /// Admission accepted the session. `a` = WFQ weight.
    SessionOpen,
    /// The session left the service. `a` = outcome: 0 completed,
    /// 1 rejected, 2 shed, 3 failed.
    SessionClose,
    /// Admission control refused the session at submit. `a` = the
    /// windowed queue-wait p99 (ns) that triggered the reject.
    AdmitReject,
    /// An admitted zero-progress session was cancelled under sustained
    /// overload. `a` = the windowed queue-wait p99 (ns) that triggered.
    SessionShed,
    /// A frame job became ready for the WFQ scheduler. `a` = frame
    /// index.
    FrameReady,
    /// The WFQ scheduler picked this session's job (min virtual time).
    /// `a` = the session's virtual time at pick, `b` = ns the job
    /// waited ready→dispatch.
    FrameDispatch,
    /// The frame job started encoding. `a` = frame index.
    FrameStart,
    /// The frame job finished. `a` = frame index, `b` = ready→encoded
    /// latency in ns.
    FrameEnd,
    /// A frame's latency crossed the configured SLO. `a` = latency ns,
    /// `b` = SLO ns.
    SloBreach,
    /// A codec task panicked under a driver. `a` = frame index.
    WorkerPanic,
    /// A task was pushed into the pool. `a` = destination deque index,
    /// or `u64::MAX` for the shared injector.
    PoolQueue,
    /// A task was taken from another worker's deque. `a` = victim deque
    /// index.
    PoolSteal,
    /// A pool worker parked (no work anywhere).
    PoolPark,
    /// A parked pool worker woke to new work.
    PoolWake,
    /// A coarse profiler phase opened. `a` = phase index
    /// (`Phase::ALL[a]`).
    PhaseEnter,
    /// A coarse profiler phase closed. `a` = phase index.
    PhaseExit,
}

impl EventKind {
    /// Every kind, indexable by discriminant.
    pub const ALL: [EventKind; 17] = [
        EventKind::SessionSubmit,
        EventKind::SessionOpen,
        EventKind::SessionClose,
        EventKind::AdmitReject,
        EventKind::SessionShed,
        EventKind::FrameReady,
        EventKind::FrameDispatch,
        EventKind::FrameStart,
        EventKind::FrameEnd,
        EventKind::SloBreach,
        EventKind::WorkerPanic,
        EventKind::PoolQueue,
        EventKind::PoolSteal,
        EventKind::PoolPark,
        EventKind::PoolWake,
        EventKind::PhaseEnter,
        EventKind::PhaseExit,
    ];

    /// Stable dotted name used in the dump JSONL.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::SessionSubmit => "session.submit",
            EventKind::SessionOpen => "session.open",
            EventKind::SessionClose => "session.close",
            EventKind::AdmitReject => "admit.reject",
            EventKind::SessionShed => "session.shed",
            EventKind::FrameReady => "frame.ready",
            EventKind::FrameDispatch => "frame.dispatch",
            EventKind::FrameStart => "frame.start",
            EventKind::FrameEnd => "frame.end",
            EventKind::SloBreach => "slo.breach",
            EventKind::WorkerPanic => "worker.panic",
            EventKind::PoolQueue => "pool.queue",
            EventKind::PoolSteal => "pool.steal",
            EventKind::PoolPark => "pool.park",
            EventKind::PoolWake => "pool.wake",
            EventKind::PhaseEnter => "phase.enter",
            EventKind::PhaseExit => "phase.exit",
        }
    }

    /// Inverse of [`EventKind::name`] (dump parsing).
    pub fn from_name(name: &str) -> Option<EventKind> {
        EventKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// One compact recorded event: 40 bytes, plain data, no heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the recorder epoch.
    pub ts_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// Service session id, or [`NO_SESSION`].
    pub session: u32,
    /// First per-kind payload word (see [`EventKind`]).
    pub a: u64,
    /// Second per-kind payload word.
    pub b: u64,
}

/// Fixed-capacity drop-oldest buffer of [`Event`]s.
struct RingBuf {
    buf: Vec<Event>,
    /// Index of the oldest event when full; insertion point otherwise.
    head: usize,
    full: bool,
}

impl RingBuf {
    fn with_capacity(capacity: usize) -> Self {
        RingBuf {
            buf: Vec::with_capacity(capacity),
            head: 0,
            full: false,
        }
    }

    /// Pushes `ev`, returning `true` when an old event was displaced.
    fn push(&mut self, ev: Event) -> bool {
        if self.buf.len() < self.buf.capacity() {
            self.buf.push(ev);
            false
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.buf.len();
            self.full = true;
            true
        }
    }

    /// Surviving events, oldest first.
    fn in_order(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

/// One thread's ring plus its identity.
struct Ring {
    tid: u32,
    name: String,
    buf: Mutex<RingBuf>,
    dropped: AtomicU64,
}

struct RecorderShared {
    capacity: usize,
    epoch: Instant,
    rings: Mutex<Vec<Arc<Ring>>>,
    next_tid: AtomicU32,
}

thread_local! {
    /// This thread's ring for each live recorder it has recorded into.
    /// Keyed by a weak handle so a dead recorder's slot is reclaimed on
    /// the next lookup rather than pinning the rings forever.
    static THREAD_RINGS: RefCell<Vec<(Weak<RecorderShared>, Arc<Ring>)>> =
        const { RefCell::new(Vec::new()) };
}

/// The flight recorder: cheap to clone (an `Arc`), recording from any
/// thread into that thread's own ring.
#[derive(Clone)]
pub struct Recorder {
    shared: Arc<RecorderShared>,
}

impl Recorder {
    /// Creates a recorder whose per-thread rings hold `capacity` events
    /// each (0 picks [`DEFAULT_RING_CAPACITY`]).
    pub fn new(capacity: usize) -> Self {
        Recorder {
            shared: Arc::new(RecorderShared {
                capacity: if capacity == 0 {
                    DEFAULT_RING_CAPACITY
                } else {
                    capacity
                },
                epoch: Instant::now(),
                rings: Mutex::new(Vec::new()),
                next_tid: AtomicU32::new(0),
            }),
        }
    }

    /// Per-thread ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Whether `other` is a handle to the same recorder.
    pub fn same_recorder(&self, other: &Recorder) -> bool {
        Arc::ptr_eq(&self.shared, &other.shared)
    }

    /// Nanoseconds since this recorder's epoch.
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.shared.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Records one event into the calling thread's ring, stamping the
    /// recorder-epoch timestamp. `session` is `Some(id)` for
    /// service-session events, `None` otherwise.
    pub fn record(&self, kind: EventKind, session: Option<u32>, a: u64, b: u64) {
        let ev = Event {
            ts_ns: self.now_ns(),
            kind,
            session: session.unwrap_or(NO_SESSION),
            a,
            b,
        };
        let ring = self.thread_ring();
        let displaced = ring.buf.lock().expect("ring lock").push(ev);
        if displaced {
            ring.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total events displaced by ring overflow, across all threads.
    pub fn events_dropped(&self) -> u64 {
        self.shared
            .rings
            .lock()
            .expect("rings lock")
            .iter()
            .map(|r| r.dropped.load(Ordering::Relaxed))
            .sum()
    }

    /// This thread's ring for this recorder, registering one on first
    /// use. Dead recorders' slots are pruned on the way.
    fn thread_ring(&self) -> Arc<Ring> {
        THREAD_RINGS.with(|slot| {
            let mut rings = slot.borrow_mut();
            rings.retain(|(w, _)| w.strong_count() > 0);
            if let Some((_, ring)) = rings
                .iter()
                .find(|(w, _)| w.upgrade().is_some_and(|s| Arc::ptr_eq(&s, &self.shared)))
            {
                return ring.clone();
            }
            let tid = self.shared.next_tid.fetch_add(1, Ordering::Relaxed);
            let name = std::thread::current()
                .name()
                .map_or_else(|| format!("thread-{tid}"), str::to_owned);
            let ring = Arc::new(Ring {
                tid,
                name,
                buf: Mutex::new(RingBuf::with_capacity(self.shared.capacity)),
                dropped: AtomicU64::new(0),
            });
            self.shared
                .rings
                .lock()
                .expect("rings lock")
                .push(ring.clone());
            rings.push((Arc::downgrade(&self.shared), ring.clone()));
            ring
        })
    }

    /// Snapshots every ring into a [`Dump`]: surviving events merged
    /// and sorted by timestamp, per-ring identities and drop counts
    /// preserved. Recording may continue concurrently; the snapshot is
    /// consistent per ring.
    pub fn snapshot(&self) -> Dump {
        let rings = self.shared.rings.lock().expect("rings lock");
        let mut infos = Vec::with_capacity(rings.len());
        let mut events = Vec::new();
        for ring in rings.iter() {
            let in_order = ring.buf.lock().expect("ring lock").in_order();
            infos.push(RingInfo {
                tid: ring.tid,
                name: ring.name.clone(),
                dropped: ring.dropped.load(Ordering::Relaxed),
            });
            events.extend(
                in_order
                    .into_iter()
                    .map(|ev| DumpEvent { tid: ring.tid, ev }),
            );
        }
        drop(rings);
        // Stable on (ts, tid) so equal timestamps keep a deterministic
        // order and the JSONL round-trips bit-for-bit.
        events.sort_by_key(|e| (e.ev.ts_ns, e.tid));
        Dump {
            capacity: self.shared.capacity,
            events_dropped: infos.iter().map(|r| r.dropped).sum(),
            rings: infos,
            events,
        }
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("capacity", &self.shared.capacity)
            .field("events_dropped", &self.events_dropped())
            .finish()
    }
}

/// Identity and drop count of one thread's ring inside a [`Dump`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingInfo {
    /// Recorder-local thread id (the dump's worker-lane key).
    pub tid: u32,
    /// OS thread name at first record (`m4ps-worker-3`, …).
    pub name: String,
    /// Events this ring displaced (drop-oldest overflow).
    pub dropped: u64,
}

/// One event with the ring (thread) it came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DumpEvent {
    /// Ring id — join against [`Dump::rings`] for the thread name.
    pub tid: u32,
    /// The event.
    pub ev: Event,
}

/// A point-in-time snapshot of every ring, ready for export/analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dump {
    /// Per-thread ring capacity the recorder ran with.
    pub capacity: usize,
    /// Total events displaced before this snapshot (sum over rings).
    pub events_dropped: u64,
    /// Every ring that recorded at least one event.
    pub rings: Vec<RingInfo>,
    /// All surviving events, sorted by `(ts_ns, tid)`.
    pub events: Vec<DumpEvent>,
}

/// Chrome-trace lane id for session `s` (worker lanes use ring tids,
/// which stay far below this).
fn session_lane(s: u32) -> u32 {
    1_000_000 + s
}

/// Lane for admission/service-level instants.
const ADMISSION_LANE: u32 = 999_999;

impl Dump {
    /// Serializes the dump as JSONL: a header line, one line per ring,
    /// one line per event, each a standalone JSON object.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        push_line(
            &mut out,
            Json::obj(vec![
                ("type", Json::str("header")),
                ("version", Json::Num(1.0)),
                ("capacity", Json::Num(self.capacity as f64)),
                ("events_dropped", Json::Num(self.events_dropped as f64)),
            ]),
        );
        for r in &self.rings {
            push_line(
                &mut out,
                Json::obj(vec![
                    ("type", Json::str("ring")),
                    ("tid", Json::Num(f64::from(r.tid))),
                    ("name", Json::str(r.name.clone())),
                    ("dropped", Json::Num(r.dropped as f64)),
                ]),
            );
        }
        for e in &self.events {
            let session = if e.ev.session == NO_SESSION {
                Json::Null
            } else {
                Json::Num(f64::from(e.ev.session))
            };
            push_line(
                &mut out,
                Json::obj(vec![
                    ("type", Json::str("event")),
                    ("tid", Json::Num(f64::from(e.tid))),
                    ("ts_ns", Json::Num(e.ev.ts_ns as f64)),
                    ("kind", Json::str(e.ev.kind.name())),
                    ("session", session),
                    ("a", Json::Num(e.ev.a as f64)),
                    ("b", Json::Num(e.ev.b as f64)),
                ]),
            );
        }
        out
    }

    /// Parses a dump back from its JSONL form.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    pub fn from_jsonl(text: &str) -> Result<Dump, String> {
        let mut capacity = 0usize;
        let mut events_dropped = 0u64;
        let mut saw_header = false;
        let mut rings = Vec::new();
        let mut events = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let doc = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            let ty = doc
                .get("type")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("line {}: missing type", i + 1))?;
            let num = |key: &str| -> Result<f64, String> {
                doc.get(key)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("line {}: missing {key}", i + 1))
            };
            match ty {
                "header" => {
                    saw_header = true;
                    capacity = num("capacity")? as usize;
                    events_dropped = num("events_dropped")? as u64;
                }
                "ring" => rings.push(RingInfo {
                    tid: num("tid")? as u32,
                    name: doc
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or_else(|| format!("line {}: missing name", i + 1))?
                        .to_string(),
                    dropped: num("dropped")? as u64,
                }),
                "event" => {
                    let kind_name = doc
                        .get("kind")
                        .and_then(Json::as_str)
                        .ok_or_else(|| format!("line {}: missing kind", i + 1))?;
                    let kind = EventKind::from_name(kind_name)
                        .ok_or_else(|| format!("line {}: unknown kind '{kind_name}'", i + 1))?;
                    let session = match doc.get("session") {
                        Some(Json::Null) | None => NO_SESSION,
                        Some(v) => v
                            .as_f64()
                            .ok_or_else(|| format!("line {}: bad session", i + 1))?
                            as u32,
                    };
                    events.push(DumpEvent {
                        tid: num("tid")? as u32,
                        ev: Event {
                            ts_ns: num("ts_ns")? as u64,
                            kind,
                            session,
                            a: num("a")? as u64,
                            b: num("b")? as u64,
                        },
                    });
                }
                other => return Err(format!("line {}: unknown type '{other}'", i + 1)),
            }
        }
        if !saw_header {
            return Err("dump has no header line".to_string());
        }
        Ok(Dump {
            capacity,
            events_dropped,
            rings,
            events,
        })
    }

    /// Builds the Chrome trace-event document: one lane per service
    /// session (frame spans + lifecycle instants), one lane per
    /// recorded thread (phase spans, pool steal/park/wake instants),
    /// and an `admission` lane with the submit/reject/shed timeline.
    /// Load in `chrome://tracing` or Perfetto.
    pub fn to_chrome_trace(&self) -> Json {
        let mut events: Vec<TraceEvent> = Vec::new();
        events.push(TraceEvent::ProcessLabel {
            label: format!(
                "m4ps flight recorder (capacity {}, dropped {})",
                self.capacity, self.events_dropped
            ),
        });
        for r in &self.rings {
            events.push(TraceEvent::ThreadName {
                tid: r.tid,
                name: r.name.clone(),
            });
        }
        events.push(TraceEvent::ThreadName {
            tid: ADMISSION_LANE,
            name: "admission".to_string(),
        });
        let mut session_lanes: Vec<u32> = Vec::new();
        // Open frame dispatches / phase enters awaiting their close.
        let mut open_frames: Vec<(u32, u64)> = Vec::new(); // (session, ts)
        let mut open_phases: Vec<(u32, u64, u64)> = Vec::new(); // (tid, phase, ts)
        for e in &self.events {
            let ev = &e.ev;
            if ev.session != NO_SESSION && !session_lanes.contains(&ev.session) {
                session_lanes.push(ev.session);
            }
            match ev.kind {
                EventKind::FrameDispatch => open_frames.push((ev.session, ev.ts_ns)),
                EventKind::FrameEnd => {
                    let start = open_frames
                        .iter()
                        .rposition(|(s, _)| *s == ev.session)
                        .map(|i| open_frames.remove(i).1)
                        .unwrap_or(ev.ts_ns.saturating_sub(ev.b));
                    events.push(TraceEvent::Span {
                        name: format!("frame {}", ev.a),
                        tid: session_lane(ev.session),
                        ts_ns: start,
                        dur_ns: ev.ts_ns.saturating_sub(start),
                        args: vec![("latency_ns", ev.b as f64)],
                    });
                }
                EventKind::PhaseEnter => open_phases.push((e.tid, ev.a, ev.ts_ns)),
                EventKind::PhaseExit => {
                    if let Some(i) = open_phases
                        .iter()
                        .rposition(|(tid, p, _)| *tid == e.tid && *p == ev.a)
                    {
                        let (_, _, start) = open_phases.remove(i);
                        let name = crate::Phase::ALL
                            .get(ev.a as usize)
                            .map_or("phase", |p| p.name());
                        events.push(TraceEvent::Span {
                            name: name.to_string(),
                            tid: e.tid,
                            ts_ns: start,
                            dur_ns: ev.ts_ns.saturating_sub(start),
                            args: Vec::new(),
                        });
                    }
                }
                EventKind::SessionSubmit
                | EventKind::SessionOpen
                | EventKind::SessionClose
                | EventKind::AdmitReject
                | EventKind::SessionShed => {
                    events.push(TraceEvent::Instant {
                        name: format!("{} s{}", ev.kind.name(), ev.session),
                        tid: ADMISSION_LANE,
                        ts_ns: ev.ts_ns,
                        args: vec![("a", ev.a as f64)],
                    });
                }
                EventKind::FrameReady | EventKind::FrameStart => {
                    events.push(TraceEvent::Instant {
                        name: format!("{} {}", ev.kind.name(), ev.a),
                        tid: session_lane(ev.session),
                        ts_ns: ev.ts_ns,
                        args: Vec::new(),
                    });
                }
                EventKind::SloBreach | EventKind::WorkerPanic => {
                    events.push(TraceEvent::Instant {
                        name: ev.kind.name().to_string(),
                        tid: session_lane(ev.session),
                        ts_ns: ev.ts_ns,
                        args: vec![("a", ev.a as f64), ("b", ev.b as f64)],
                    });
                }
                EventKind::PoolQueue
                | EventKind::PoolSteal
                | EventKind::PoolPark
                | EventKind::PoolWake => {
                    events.push(TraceEvent::Instant {
                        name: ev.kind.name().to_string(),
                        tid: e.tid,
                        ts_ns: ev.ts_ns,
                        args: vec![("a", ev.a as f64)],
                    });
                }
            }
        }
        for s in session_lanes {
            events.push(TraceEvent::ThreadName {
                tid: session_lane(s),
                name: format!("session-{s}"),
            });
        }
        chrome_trace_json(&events)
    }

    /// Writes the JSONL dump to `path` and the Chrome trace to
    /// `<path stem>.trace.json` next to it. Returns the trace path.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write(&self, path: &str) -> std::io::Result<String> {
        std::fs::write(path, self.to_jsonl())?;
        let trace_path = match path.strip_suffix(".jsonl") {
            Some(stem) => format!("{stem}.trace.json"),
            None => format!("{path}.trace.json"),
        };
        std::fs::write(&trace_path, self.to_chrome_trace().pretty())?;
        Ok(trace_path)
    }
}

fn push_line(out: &mut String, v: Json) {
    out.push_str(&crate::metrics::compact(&v));
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, session: u32, a: u64) -> Event {
        Event {
            ts_ns: 0,
            kind,
            session,
            a,
            b: 0,
        }
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut ring = RingBuf::with_capacity(4);
        let mut dropped = 0;
        for i in 0..10u64 {
            if ring.push(Event {
                a: i,
                ..ev(EventKind::FrameReady, 0, 0)
            }) {
                dropped += 1;
            }
        }
        assert_eq!(dropped, 6);
        let kept: Vec<u64> = ring.in_order().iter().map(|e| e.a).collect();
        assert_eq!(kept, vec![6, 7, 8, 9]);
    }

    #[test]
    fn record_and_snapshot_single_thread() {
        let rec = Recorder::new(16);
        rec.record(EventKind::SessionOpen, Some(3), 2, 0);
        rec.record(EventKind::FrameDispatch, Some(3), 100, 50);
        rec.record(EventKind::PoolPark, None, 0, 0);
        let dump = rec.snapshot();
        assert_eq!(dump.capacity, 16);
        assert_eq!(dump.events_dropped, 0);
        assert_eq!(dump.rings.len(), 1);
        assert_eq!(dump.events.len(), 3);
        assert_eq!(dump.events[0].ev.kind, EventKind::SessionOpen);
        assert_eq!(dump.events[0].ev.session, 3);
        assert_eq!(dump.events[2].ev.session, NO_SESSION);
        // Timestamps are monotone within one thread.
        assert!(dump.events[0].ev.ts_ns <= dump.events[1].ev.ts_ns);
    }

    #[test]
    fn per_thread_rings_merge_in_snapshot() {
        let rec = Recorder::new(8);
        rec.record(EventKind::SessionSubmit, Some(0), 0, 0);
        std::thread::scope(|s| {
            for t in 0..3u64 {
                let rec = rec.clone();
                s.spawn(move || {
                    for i in 0..4 {
                        rec.record(EventKind::PoolSteal, None, t * 10 + i, 0);
                    }
                });
            }
        });
        let dump = rec.snapshot();
        assert_eq!(dump.rings.len(), 4, "main + 3 worker rings");
        assert_eq!(dump.events.len(), 13);
        // Sorted by timestamp.
        assert!(dump
            .events
            .windows(2)
            .all(|w| w[0].ev.ts_ns <= w[1].ev.ts_ns));
    }

    #[test]
    fn overflow_is_counted_exactly() {
        let rec = Recorder::new(8);
        for i in 0..30u64 {
            rec.record(EventKind::FrameReady, Some(1), i, 0);
        }
        assert_eq!(rec.events_dropped(), 22);
        let dump = rec.snapshot();
        assert_eq!(dump.events_dropped, 22);
        let kept: Vec<u64> = dump.events.iter().map(|e| e.ev.a).collect();
        assert_eq!(kept, (22..30).collect::<Vec<_>>());
    }

    #[test]
    fn jsonl_round_trips() {
        let rec = Recorder::new(8);
        rec.record(EventKind::SessionOpen, Some(1), 2, 0);
        rec.record(EventKind::FrameDispatch, Some(1), 4096, 1234);
        rec.record(EventKind::FrameEnd, Some(1), 0, 99_000);
        rec.record(EventKind::PoolWake, None, 0, 0);
        let dump = rec.snapshot();
        let text = dump.to_jsonl();
        let parsed = Dump::from_jsonl(&text).expect("round trip parses");
        assert_eq!(parsed, dump);
    }

    #[test]
    fn chrome_trace_has_session_and_worker_lanes() {
        let rec = Recorder::new(32);
        rec.record(EventKind::SessionOpen, Some(7), 1, 0);
        rec.record(EventKind::FrameDispatch, Some(7), 1000, 10);
        rec.record(EventKind::FrameStart, Some(7), 0, 0);
        rec.record(EventKind::FrameEnd, Some(7), 0, 5_000);
        rec.record(EventKind::SessionShed, Some(9), 777, 0);
        let doc = rec.snapshot().to_chrome_trace();
        let text = doc.pretty();
        let parsed = Json::parse(&text).unwrap();
        let arr = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        let names: Vec<&str> = arr
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .filter_map(|e| e.get("args")?.get("name")?.as_str())
            .collect();
        assert!(
            names.contains(&"session-7"),
            "session lane named: {names:?}"
        );
        assert!(names.contains(&"admission"), "admission lane: {names:?}");
        // The frame span landed in the session lane with its latency.
        let span = arr
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("frame 0"))
            .expect("frame span present");
        assert_eq!(
            span.get("tid").unwrap().as_f64(),
            Some(f64::from(session_lane(7)))
        );
        assert_eq!(span.get("ph").unwrap().as_str(), Some("X"));
    }

    #[test]
    fn malformed_dump_lines_are_rejected() {
        assert!(Dump::from_jsonl("not json").is_err());
        assert!(Dump::from_jsonl("{\"type\":\"event\"}").is_err());
        assert!(
            Dump::from_jsonl("").is_err(),
            "headerless dump must not parse"
        );
        let bad_kind = "{\"type\":\"header\",\"capacity\":4,\"events_dropped\":0}\n\
             {\"type\":\"event\",\"tid\":0,\"ts_ns\":1,\"kind\":\"nope\",\"session\":null,\"a\":0,\"b\":0}";
        assert!(Dump::from_jsonl(bad_kind).is_err());
    }
}
