//! `m4ps-obs` — offline analyzer for flight-recorder dumps.
//!
//! A dump (`flight_<n>.jsonl`, written by the serve layer on shed,
//! reject, SLO breach, or worker panic — or on demand via
//! `Recorder::snapshot`) is a merged snapshot of every thread's event
//! ring. This tool turns one into operator-facing views:
//!
//! ```text
//! m4ps-obs report flight_0.jsonl [--loadgen report.json] [--top 5]
//! m4ps-obs trace  flight_0.jsonl out.trace.json
//! ```
//!
//! `report` prints the run summary, the admission timeline, a
//! per-session queue-wait/latency breakdown, the worker steal matrix,
//! and the top-N frame-latency outliers, each with its surrounding
//! event slice. With `--loadgen`, per-session memory-hierarchy
//! counters from an `m4ps-loadgen --memsim` JSON report are joined in.
//! `trace` re-exports the dump as a Chrome trace-event file
//! (chrome://tracing, Perfetto) with one lane per session and worker.

use std::collections::BTreeMap;
use std::process::ExitCode;

use m4ps_obs::{outcome, Dump, DumpEvent, EventKind, NO_SESSION};
use m4ps_testkit::json::Json;

const USAGE: &str = "m4ps-obs: flight-recorder dump analyzer

USAGE:
    m4ps-obs report <dump.jsonl> [--loadgen <report.json>] [--top N]
    m4ps-obs trace  <dump.jsonl> <out.json>

COMMANDS:
    report    print summary, admission timeline, per-session queue-wait
              breakdown, steal matrix, and top-N latency outliers
    trace     export the dump as a Chrome trace-event JSON file

OPTIONS:
    --loadgen PATH   join per-session memsim counters from an
                     m4ps-loadgen JSON report
    --top N          outliers to show with event slices (default 5)
    --help           this text
";

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("m4ps-obs: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help" || a == "-h") || argv.is_empty() {
        print!("{USAGE}");
        return Ok(());
    }
    match argv[0].as_str() {
        "report" => {
            let mut dump_path = None;
            let mut loadgen = None;
            let mut top = 5usize;
            let mut it = argv[1..].iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--loadgen" => {
                        loadgen = Some(it.next().ok_or("--loadgen requires a value")?.clone())
                    }
                    "--top" => {
                        let v = it.next().ok_or("--top requires a value")?;
                        top = v.parse().map_err(|e| format!("--top '{v}': {e}"))?;
                    }
                    other if !other.starts_with('-') && dump_path.is_none() => {
                        dump_path = Some(other.to_string())
                    }
                    other => return Err(format!("unexpected argument '{other}' (try --help)")),
                }
            }
            let dump = load_dump(&dump_path.ok_or("report: missing <dump.jsonl>")?)?;
            report(&dump, loadgen.as_deref(), top)
        }
        "trace" => {
            if argv.len() != 3 {
                return Err("trace: expected <dump.jsonl> <out.json>".to_string());
            }
            let dump = load_dump(&argv[1])?;
            std::fs::write(&argv[2], dump.to_chrome_trace().pretty())
                .map_err(|e| format!("writing {}: {e}", argv[2]))?;
            eprintln!(
                "m4ps-obs: wrote {} ({} events, {} rings)",
                argv[2],
                dump.events.len(),
                dump.rings.len()
            );
            Ok(())
        }
        other => Err(format!("unknown command '{other}' (try --help)")),
    }
}

fn load_dump(path: &str) -> Result<Dump, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    Dump::from_jsonl(&text).map_err(|e| format!("{path}: {e}"))
}

/// Milliseconds since the dump's first event.
fn rel_ms(dump: &Dump, ts_ns: u64) -> f64 {
    let t0 = dump.events.first().map_or(0, |e| e.ev.ts_ns);
    ts_ns.saturating_sub(t0) as f64 / 1e6
}

fn ring_name(dump: &Dump, tid: u32) -> &str {
    dump.rings
        .iter()
        .find(|r| r.tid == tid)
        .map_or("?", |r| r.name.as_str())
}

fn report(dump: &Dump, loadgen: Option<&str>, top: usize) -> Result<(), String> {
    summary(dump);
    admission_timeline(dump);
    session_breakdown(dump);
    steal_matrix(dump);
    outliers(dump, top);
    if let Some(path) = loadgen {
        memsim_table(path)?;
    }
    Ok(())
}

fn summary(dump: &Dump) {
    println!("== flight recorder dump ==");
    let span_ms = dump.events.last().map_or(0.0, |e| rel_ms(dump, e.ev.ts_ns));
    println!(
        "  {} events over {:.3} ms | {} rings (capacity {}) | {} dropped",
        dump.events.len(),
        span_ms,
        dump.rings.len(),
        dump.capacity,
        dump.events_dropped
    );
    let mut by_kind: BTreeMap<&'static str, usize> = BTreeMap::new();
    for e in &dump.events {
        *by_kind.entry(e.ev.kind.name()).or_default() += 1;
    }
    let mut counts: Vec<(&str, usize)> = by_kind.into_iter().collect();
    counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    let line = counts
        .iter()
        .map(|(k, n)| format!("{k}={n}"))
        .collect::<Vec<_>>()
        .join(" ");
    println!("  {line}");
}

/// Chronological admission/lifecycle decisions, the "what did the
/// controller do and why" view.
fn admission_timeline(dump: &Dump) {
    println!("\n== admission timeline ==");
    let mut shown = 0usize;
    for e in &dump.events {
        let detail = match e.ev.kind {
            EventKind::SessionSubmit => "arrived".to_string(),
            EventKind::SessionOpen => format!("admitted weight={}", e.ev.a),
            EventKind::AdmitReject => {
                format!("REJECTED (queue-wait p99 {:.1} us)", e.ev.a as f64 / 1e3)
            }
            EventKind::SessionShed => {
                format!("SHED (queue-wait p99 {:.1} us)", e.ev.a as f64 / 1e3)
            }
            EventKind::SessionClose => format!("closed: {}", outcome::name(e.ev.a)),
            _ => continue,
        };
        println!(
            "  {:>10.3} ms  session {:>3}  {}",
            rel_ms(dump, e.ev.ts_ns),
            e.ev.session,
            detail
        );
        shown += 1;
    }
    if shown == 0 {
        println!("  (no admission events in dump)");
    }
}

#[derive(Default)]
struct SessionRow {
    dispatched: u64,
    done: u64,
    wait_sum: u64,
    wait_max: u64,
    lat_sum: u64,
    lat_max: u64,
    close: Option<u64>,
}

/// Per-session queue-wait and latency breakdown from `frame.dispatch`
/// (`b` = ready→dispatch wait) and `frame.end` (`b` = ready→encoded
/// latency).
fn session_breakdown(dump: &Dump) {
    println!("\n== per-session breakdown ==");
    let mut rows: BTreeMap<u32, SessionRow> = BTreeMap::new();
    for e in &dump.events {
        if e.ev.session == NO_SESSION {
            continue;
        }
        let row = rows.entry(e.ev.session).or_default();
        match e.ev.kind {
            EventKind::FrameDispatch => {
                row.dispatched += 1;
                row.wait_sum += e.ev.b;
                row.wait_max = row.wait_max.max(e.ev.b);
            }
            EventKind::FrameEnd => {
                row.done += 1;
                row.lat_sum += e.ev.b;
                row.lat_max = row.lat_max.max(e.ev.b);
            }
            EventKind::SessionClose => row.close = Some(e.ev.a),
            _ => {}
        }
    }
    if rows.is_empty() {
        println!("  (no session events in dump)");
        return;
    }
    println!(
        "  {:>7} {:>9} {:>6} {:>12} {:>12} {:>11} {:>11}  outcome",
        "session", "dispatch", "done", "wait-avg us", "wait-max us", "lat-avg ms", "lat-max ms"
    );
    for (id, row) in &rows {
        let wait_avg = if row.dispatched > 0 {
            row.wait_sum as f64 / row.dispatched as f64 / 1e3
        } else {
            0.0
        };
        let lat_avg = if row.done > 0 {
            row.lat_sum as f64 / row.done as f64 / 1e6
        } else {
            0.0
        };
        println!(
            "  {:>7} {:>9} {:>6} {:>12.1} {:>12.1} {:>11.3} {:>11.3}  {}",
            id,
            row.dispatched,
            row.done,
            wait_avg,
            row.wait_max as f64 / 1e3,
            lat_avg,
            row.lat_max as f64 / 1e6,
            row.close.map_or("open", outcome::name),
        );
    }
}

/// Thief ring x victim deque counts from `pool.steal` events.
fn steal_matrix(dump: &Dump) {
    println!("\n== steal matrix (thief ring x victim deque) ==");
    let mut cells: BTreeMap<(u32, u64), u64> = BTreeMap::new();
    let mut victims: Vec<u64> = Vec::new();
    for e in &dump.events {
        if e.ev.kind == EventKind::PoolSteal {
            *cells.entry((e.tid, e.ev.a)).or_default() += 1;
            if !victims.contains(&e.ev.a) {
                victims.push(e.ev.a);
            }
        }
    }
    if cells.is_empty() {
        println!("  (no steals in dump)");
        return;
    }
    victims.sort_unstable();
    let header = victims
        .iter()
        .map(|v| format!("{v:>8}"))
        .collect::<String>();
    println!("  {:<18}{header}", "thief \\ victim");
    let thieves: Vec<u32> = {
        let mut t: Vec<u32> = cells.keys().map(|(tid, _)| *tid).collect();
        t.dedup();
        t
    };
    for tid in thieves {
        let row = victims
            .iter()
            .map(|v| format!("{:>8}", cells.get(&(tid, *v)).copied().unwrap_or(0)))
            .collect::<String>();
        println!("  {:<18}{row}", ring_name(dump, tid));
    }
}

/// Top-N `frame.end` latencies, each with the session's surrounding
/// event slice — the "what was this frame doing" drill-down.
fn outliers(dump: &Dump, top: usize) {
    println!("\n== top {top} frame-latency outliers ==");
    let mut ends: Vec<&DumpEvent> = dump
        .events
        .iter()
        .filter(|e| e.ev.kind == EventKind::FrameEnd)
        .collect();
    if ends.is_empty() {
        println!("  (no completed frames in dump)");
        return;
    }
    ends.sort_by(|x, y| y.ev.b.cmp(&x.ev.b).then(x.ev.ts_ns.cmp(&y.ev.ts_ns)));
    for end in ends.iter().take(top) {
        println!(
            "  session {} frame {} — {:.3} ms (ready -> encoded), ended at {:.3} ms on {}",
            end.ev.session,
            end.ev.a,
            end.ev.b as f64 / 1e6,
            rel_ms(dump, end.ev.ts_ns),
            ring_name(dump, end.tid),
        );
        // Everything this session did from frame-ready to frame-end.
        let start = end.ev.ts_ns.saturating_sub(end.ev.b);
        let slice: Vec<&DumpEvent> = dump
            .events
            .iter()
            .filter(|e| {
                e.ev.session == end.ev.session && e.ev.ts_ns >= start && e.ev.ts_ns <= end.ev.ts_ns
            })
            .collect();
        const SLICE_MAX: usize = 10;
        for e in slice.iter().take(SLICE_MAX) {
            println!(
                "      {:>10.3} ms  {:<14} a={} b={} [{}]",
                rel_ms(dump, e.ev.ts_ns),
                e.ev.kind.name(),
                e.ev.a,
                e.ev.b,
                ring_name(dump, e.tid),
            );
        }
        if slice.len() > SLICE_MAX {
            println!("      ... {} more events in slice", slice.len() - SLICE_MAX);
        }
    }
}

/// Per-session memory-hierarchy counters joined from an
/// `m4ps-loadgen --memsim` JSON report.
fn memsim_table(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let sessions = doc
        .get("per_session")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{path}: no per_session array (need --memsim --json report)"))?;
    println!("\n== per-session memory hierarchy (from {path}) ==");
    println!(
        "  {:>7} {:>6} {:>10} {:>12} {:>12} {:>10} {:>9} {:>14}  status",
        "session", "weight", "frames", "loads", "stores", "l1-miss", "l2-miss", "bytes-accessed"
    );
    for s in sessions {
        let num = |k: &str| s.get(k).and_then(Json::as_f64).unwrap_or(0.0);
        let ctr = |k: &str| {
            s.get("counters")
                .and_then(|c| c.get(k))
                .and_then(Json::as_f64)
                .unwrap_or(0.0)
        };
        println!(
            "  {:>7} {:>6} {:>10} {:>12} {:>12} {:>10} {:>9} {:>14}  {}",
            num("id") as u64,
            num("weight") as u64,
            num("frames") as u64,
            ctr("loads") as u64,
            ctr("stores") as u64,
            ctr("l1_misses") as u64,
            ctr("l2_misses") as u64,
            ctr("bytes_accessed") as u64,
            s.get("status").and_then(Json::as_str).unwrap_or("?"),
        );
    }
    Ok(())
}
