//! The profiler session, thread attachment, and the span primitives.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::metrics::{HistogramSnapshot, MetricId, Registry};
use crate::phase::Phase;
use crate::profile::{add_wrapping, sub_wrapping, PhaseProfile};
use crate::recorder::{EventKind, Recorder};
use crate::trace::TraceEvent;
use m4ps_memsim::Counters;
use m4ps_testkit::json::Json;

/// Number of threads (process-wide) currently attached to any session.
/// The [`enabled`] fast path; span sites skip counter snapshots when
/// this is zero.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

struct Shared {
    tracing: bool,
    epoch: Instant,
    profile: Mutex<PhaseProfile>,
    events: Mutex<Vec<TraceEvent>>,
    next_tid: AtomicU32,
    metrics: Registry,
    /// Flight recorder, when a service/study installed one: coarse
    /// phase enter/exit events land in the calling thread's ring.
    recorder: OnceLock<Recorder>,
}

/// One open span on a thread's stack.
struct Frame {
    phase: Phase,
    snap: Counters,
    start_ns: u64,
    /// Domain frames wrap a forked counter stream: on exit their delta
    /// is not subtracted from the lexical parent (different stream).
    domain: bool,
}

struct ThreadState {
    shared: Arc<Shared>,
    tid: u32,
    /// Reentrant-attach depth for this session on this thread.
    depth: usize,
    stack: Vec<Frame>,
    profile: PhaseProfile,
    events: Vec<TraceEvent>,
}

thread_local! {
    static STATE: RefCell<Option<ThreadState>> = const { RefCell::new(None) };
}

/// A profiling session. Cheap to clone (an `Arc`); threads opt in with
/// [`Profiler::attach`] and their profiles merge on detach.
#[derive(Clone)]
pub struct Profiler {
    shared: Arc<Shared>,
}

impl Profiler {
    /// Creates a session. With `tracing` on, coarse spans additionally
    /// record Chrome trace events (see [`Profiler::trace_json`]).
    pub fn new(tracing: bool) -> Self {
        Profiler {
            shared: Arc::new(Shared {
                tracing,
                epoch: Instant::now(),
                profile: Mutex::new(PhaseProfile::new()),
                events: Mutex::new(Vec::new()),
                next_tid: AtomicU32::new(0),
                metrics: Registry::new(),
                recorder: OnceLock::new(),
            }),
        }
    }

    /// Installs the flight recorder this session's coarse phase
    /// enter/exit events go to. First caller wins; later calls are
    /// no-ops (a session belongs to one recorder for its lifetime).
    pub fn set_recorder(&self, rec: &Recorder) {
        let _ = self.shared.recorder.set(rec.clone());
    }

    /// The flight recorder installed on this session, if any.
    pub fn recorder(&self) -> Option<&Recorder> {
        self.shared.recorder.get()
    }

    /// Whether this session records trace events.
    pub fn tracing(&self) -> bool {
        self.shared.tracing
    }

    /// Adds a `process_labels` metadata event (shown next to the
    /// process in the trace viewer, e.g. `kernels=avx2`). No-op when
    /// the session is not tracing.
    pub fn set_process_label(&self, label: &str) {
        if self.shared.tracing {
            let mut events = self.shared.events.lock().expect("events lock");
            events.push(TraceEvent::ProcessLabel {
                label: label.to_string(),
            });
        }
    }

    /// Attaches the calling thread to this session until the guard
    /// drops. Reentrant for the same session (inner guards are free);
    /// attaching to a *different* session while one is active returns
    /// a no-op guard — the first session keeps the thread.
    #[must_use = "dropping the guard immediately detaches the thread"]
    pub fn attach(&self) -> AttachGuard {
        STATE.with(|s| {
            let mut slot = s.borrow_mut();
            match slot.as_mut() {
                Some(st) if Arc::ptr_eq(&st.shared, &self.shared) => {
                    st.depth += 1;
                    AttachGuard { attached: true }
                }
                Some(_) => AttachGuard { attached: false },
                None => {
                    let tid = self.shared.next_tid.fetch_add(1, Ordering::Relaxed);
                    *slot = Some(ThreadState {
                        shared: Arc::clone(&self.shared),
                        tid,
                        depth: 1,
                        stack: Vec::with_capacity(16),
                        profile: PhaseProfile::new(),
                        events: Vec::new(),
                    });
                    ACTIVE.fetch_add(1, Ordering::Relaxed);
                    AttachGuard { attached: true }
                }
            }
        })
    }

    /// The merged profile of every thread that has detached so far.
    /// Read after all guards have dropped for the run's final tables.
    pub fn profile(&self) -> PhaseProfile {
        self.shared.profile.lock().expect("profile lock").clone()
    }

    /// The trace events flushed so far (detached threads only).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.shared.events.lock().expect("events lock").clone()
    }

    /// The Chrome trace-event document for this session
    /// (`chrome://tracing` / Perfetto loadable).
    pub fn trace_json(&self) -> Json {
        crate::trace::chrome_trace_json(&self.events())
    }

    /// Writes [`Profiler::trace_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write_trace(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.trace_json().pretty())
    }

    /// One JSON object per line for every registered metric (JSONL).
    pub fn metrics_jsonl(&self) -> String {
        self.shared.metrics.to_jsonl()
    }

    /// Whether `other` is a handle to the same session.
    pub fn same_session(&self, other: &Profiler) -> bool {
        Arc::ptr_eq(&self.shared, &other.shared)
    }

    /// Adds `v` to a counter in *this* session's registry, regardless
    /// of the calling thread's attachment. This is how the pool
    /// attributes per-scope metrics to the scope's own session even
    /// when the executing thread is attached elsewhere (a scope owner
    /// helping a concurrent scope's tasks).
    pub fn metric_counter_add(&self, id: MetricId, v: u64) {
        self.shared.metrics.counter_add(id, v);
    }

    /// Reads a counter from this session's registry.
    pub fn metric_counter_value(&self, id: MetricId) -> u64 {
        self.shared.metrics.counter_value(id)
    }

    /// Sets a gauge in this session's registry directly.
    pub fn metric_gauge_set(&self, id: MetricId, v: u64) {
        self.shared.metrics.gauge_set(id, v);
    }

    /// Reads a gauge from this session's registry.
    pub fn metric_gauge_value(&self, id: MetricId) -> u64 {
        self.shared.metrics.gauge_value(id)
    }

    /// Records one histogram observation in this session's registry
    /// directly (see [`Profiler::metric_counter_add`]).
    pub fn metric_histogram_record(&self, id: MetricId, v: u64) {
        self.shared.metrics.histogram_record(id, v);
    }

    /// A point-in-time copy of a histogram in this session's registry.
    /// Admission control diffs two of these (`HistogramSnapshot::
    /// delta_since`) to watch a recent window.
    pub fn histogram_snapshot(&self, id: MetricId) -> HistogramSnapshot {
        self.shared.metrics.histogram_snapshot(id)
    }
}

/// Detaches the thread (and flushes its profile) on drop. See
/// [`Profiler::attach`].
#[must_use]
pub struct AttachGuard {
    attached: bool,
}

impl Drop for AttachGuard {
    fn drop(&mut self) {
        if !self.attached {
            return;
        }
        STATE.with(|s| {
            let mut slot = s.borrow_mut();
            let Some(st) = slot.as_mut() else { return };
            st.depth -= 1;
            if st.depth > 0 {
                return;
            }
            let st = slot.take().expect("state present");
            // Flush even if spans are still open (error paths unwind
            // through `?` without closing spans; the partial profile is
            // still the best available answer).
            st.shared
                .profile
                .lock()
                .expect("profile lock")
                .merge(&st.profile);
            if st.shared.tracing && !st.events.is_empty() {
                let mut events = st.shared.events.lock().expect("events lock");
                events.push(TraceEvent::ThreadName {
                    tid: st.tid,
                    name: format!("m4ps-{}", st.tid),
                });
                events.extend(st.events);
            }
            ACTIVE.fetch_sub(1, Ordering::Relaxed);
        });
    }
}

/// Whether any thread in the process is attached to a session. Span
/// sites use this to skip counter snapshots entirely in unprofiled
/// runs; [`enter`]/[`exit`] additionally check the calling thread's
/// own attachment, so a `true` from a *different* thread's session
/// costs this thread two snapshots and nothing else.
#[inline]
pub fn enabled() -> bool {
    ACTIVE.load(Ordering::Relaxed) != 0
}

/// The session the calling thread is attached to, if any. This is how
/// deep call sites (the encoder handing its pool a session) reach the
/// profiler without plumbing it through every signature.
pub fn current() -> Option<Profiler> {
    STATE.with(|s| {
        s.borrow().as_ref().map(|st| Profiler {
            shared: Arc::clone(&st.shared),
        })
    })
}

fn elapsed_ns(shared: &Shared) -> u64 {
    u64::try_from(shared.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

fn push_frame(phase: Phase, snap: Counters, domain: bool) {
    STATE.with(|s| {
        if let Some(st) = s.borrow_mut().as_mut() {
            let start_ns = if phase.is_coarse() {
                if let Some(rec) = st.shared.recorder.get() {
                    rec.record(EventKind::PhaseEnter, None, phase as u64, 0);
                }
                elapsed_ns(&st.shared)
            } else {
                0
            };
            st.stack.push(Frame {
                phase,
                snap,
                start_ns,
                domain,
            });
        }
    });
}

fn pop_frame(phase: Phase, now: Counters) {
    STATE.with(|s| {
        if let Some(st) = s.borrow_mut().as_mut() {
            let Some(frame) = st.stack.pop() else {
                debug_assert!(false, "exit({phase:?}) with empty span stack");
                return;
            };
            debug_assert_eq!(frame.phase, phase, "unbalanced span nesting");
            let mut delta = now;
            sub_wrapping(&mut delta, &frame.snap);
            let stats = st.profile.get_mut(frame.phase);
            add_wrapping(&mut stats.counters, &delta);
            stats.entries += 1;
            if frame.phase.is_coarse() {
                let end_ns = elapsed_ns(&st.shared);
                stats.wall_ns += end_ns.saturating_sub(frame.start_ns);
                if let Some(rec) = st.shared.recorder.get() {
                    rec.record(EventKind::PhaseExit, None, frame.phase as u64, 0);
                }
                if st.shared.tracing {
                    st.events.push(TraceEvent::Complete {
                        name: frame.phase.name(),
                        tid: st.tid,
                        ts_ns: frame.start_ns,
                        dur_ns: end_ns.saturating_sub(frame.start_ns),
                    });
                }
            }
            // Exclusive attribution: remove this span's inclusive delta
            // from the enclosing phase. Domain frames skip this — their
            // delta comes from a forked stream the parent never sees
            // directly (it arrives later via absorb + `absorbed`).
            if !frame.domain {
                if let Some(parent) = st.stack.last() {
                    sub_wrapping(&mut st.profile.get_mut(parent.phase).counters, &delta);
                }
            }
        }
    });
}

/// Opens a span. `snap` is the memory model's counters at entry.
/// No-op on unattached threads. Prefer the [`span!`](crate::span)
/// macro, which pairs this with [`exit`] and caches the enabled check.
pub fn enter(phase: Phase, snap: Counters) {
    push_frame(phase, snap, false);
}

/// Closes the innermost span, which must be `phase` (debug-asserted).
/// `now` is the same counter stream sampled at exit.
pub fn exit(phase: Phase, now: Counters) {
    pop_frame(phase, now);
}

/// Opens a *domain* span around code charging a forked counter stream
/// (a slice job's `fork()`ed model). `snap` is the forked stream's
/// counters at entry.
pub fn enter_domain(phase: Phase, snap: Counters) {
    push_frame(phase, snap, true);
}

/// Closes the innermost (domain) span against the forked stream's
/// counters. Unlike [`exit`], nothing is subtracted from the lexical
/// parent.
pub fn exit_domain(phase: Phase, now: Counters) {
    pop_frame(phase, now);
}

/// Records that `child_total` counters were folded into the calling
/// thread's stream by `ParallelModel::absorb`. Subtracts the total from
/// the innermost open phase so the jump is not double-attributed (the
/// child's own profile already carries it, phase by phase).
pub fn absorbed(child_total: &Counters) {
    STATE.with(|s| {
        if let Some(st) = s.borrow_mut().as_mut() {
            if let Some(top) = st.stack.last() {
                let phase = top.phase;
                sub_wrapping(&mut st.profile.get_mut(phase).counters, child_total);
            }
        }
    });
}

fn with_metrics(f: impl FnOnce(&Registry)) {
    if !enabled() {
        return;
    }
    STATE.with(|s| {
        if let Some(st) = s.borrow().as_ref() {
            f(&st.shared.metrics);
        }
    });
}

/// Adds `v` to a counter metric. No-op on unattached threads.
pub fn counter_add(id: MetricId, v: u64) {
    with_metrics(|m| m.counter_add(id, v));
}

/// Sets a gauge metric to `v`. No-op on unattached threads.
pub fn gauge_set(id: MetricId, v: u64) {
    with_metrics(|m| m.gauge_set(id, v));
}

/// Records one observation `v` into a histogram metric. No-op on
/// unattached threads.
pub fn histogram_record(id: MetricId, v: u64) {
    with_metrics(|m| m.histogram_record(id, v));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(loads: u64, stores: u64) -> Counters {
        Counters {
            loads,
            stores,
            ..Counters::default()
        }
    }

    #[test]
    fn nested_spans_attribute_exclusively() {
        let p = Profiler::new(false);
        let g = p.attach();
        enter(Phase::Run, c(0, 0));
        enter(Phase::MeSearch, c(10, 5));
        enter(Phase::MeHalfPel, c(30, 8));
        exit(Phase::MeHalfPel, c(50, 9));
        exit(Phase::MeSearch, c(70, 12));
        exit(Phase::Run, c(100, 20));
        drop(g);

        let prof = p.profile();
        assert_eq!(prof.get(Phase::MeHalfPel).counters, c(20, 1));
        assert_eq!(prof.get(Phase::MeSearch).counters, c(40, 6));
        assert_eq!(prof.get(Phase::Run).counters, c(40, 13));
        assert_eq!(prof.total(), c(100, 20));
        assert_eq!(prof.get(Phase::MeSearch).entries, 1);
    }

    #[test]
    fn domain_spans_and_absorbed_telescope() {
        let p = Profiler::new(false);
        let g = p.attach();
        enter(Phase::Run, c(0, 0));
        // Inline slice job on a forked stream (fresh counters).
        enter_domain(Phase::Slice, c(0, 0));
        enter(Phase::DctQuant, c(3, 1));
        exit(Phase::DctQuant, c(7, 2));
        exit_domain(Phase::Slice, c(9, 4));
        // Parent absorbs the child's 9 loads / 4 stores.
        absorbed(&c(9, 4));
        exit(Phase::Run, c(20, 10));
        drop(g);

        let prof = p.profile();
        assert_eq!(prof.get(Phase::DctQuant).counters, c(4, 1));
        assert_eq!(prof.get(Phase::Slice).counters, c(5, 3));
        // Run saw 20/10 inclusive, minus the absorbed 9/4.
        assert_eq!(prof.get(Phase::Run).counters, c(11, 6));
        // Grand total equals the parent stream's final aggregate.
        assert_eq!(prof.total(), c(20, 10));
    }

    #[test]
    fn reentrant_attach_is_balanced() {
        let p = Profiler::new(false);
        let outer = p.attach();
        {
            let inner = p.attach();
            assert!(current().is_some());
            drop(inner);
        }
        // Still attached: the outer guard holds the thread.
        assert!(current().is_some());
        enter(Phase::Run, c(0, 0));
        exit(Phase::Run, c(5, 5));
        drop(outer);
        assert!(current().is_none());
        assert_eq!(p.profile().total(), c(5, 5));
    }

    #[test]
    fn second_session_gets_noop_guard() {
        let p1 = Profiler::new(false);
        let p2 = Profiler::new(false);
        let g1 = p1.attach();
        let g2 = p2.attach();
        enter(Phase::Run, c(0, 0));
        exit(Phase::Run, c(3, 0));
        drop(g2);
        // p2's guard was a no-op: thread still attached to p1.
        assert!(current().is_some());
        drop(g1);
        assert_eq!(p1.profile().total(), c(3, 0));
        assert_eq!(p2.profile().total(), Counters::default());
    }

    #[test]
    fn worker_profiles_merge_across_threads() {
        let p = Profiler::new(false);
        let g = p.attach();
        enter(Phase::Run, c(0, 0));
        std::thread::scope(|s| {
            for i in 0..4u64 {
                let p = p.clone();
                s.spawn(move || {
                    let g = p.attach();
                    enter_domain(Phase::Slice, c(0, 0));
                    exit_domain(Phase::Slice, c(i + 1, i));
                    drop(g);
                });
            }
        });
        // 4 slices absorbed: totals 1+2+3+4 loads, 0+1+2+3 stores.
        for i in 0..4u64 {
            absorbed(&c(i + 1, i));
        }
        exit(Phase::Run, c(100, 50));
        drop(g);
        let prof = p.profile();
        assert_eq!(prof.get(Phase::Slice).counters, c(10, 6));
        assert_eq!(prof.get(Phase::Slice).entries, 4);
        assert_eq!(prof.get(Phase::Run).counters, c(90, 44));
        // The parent stream's final aggregate (100, 50) already folded
        // in the absorbed slice totals; the profile sums back to it.
        assert_eq!(prof.total(), c(100, 50));
    }

    #[test]
    fn unattached_calls_are_noops() {
        enter(Phase::Run, c(0, 0));
        exit(Phase::Run, c(1, 1));
        absorbed(&c(5, 5));
        counter_add(MetricId::ResyncMarkerBytes, 3);
        assert!(current().is_none());
    }
}
