//! A small fixed registry of counters, gauges and log₂-bucket
//! histograms, exported as JSONL via `testkit::json`.
//!
//! The id space is a closed enum rather than string interning: every
//! metric this workload emits is known at compile time, lookups are
//! array indexing, and recording is a single atomic RMW — cheap enough
//! to leave in per-macroblock paths behind the [`enabled`]
//! (crate::enabled) gate.

use m4ps_testkit::json::Json;
use std::sync::atomic::{AtomicU64, Ordering};

/// Buckets in a histogram: bucket `i` counts values whose bit length
/// is `i` (i.e. `v` in `[2^(i-1), 2^i)`; bucket 0 holds zero).
const HIST_BUCKETS: usize = 32;

/// Every metric the workload records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricId {
    /// Histogram: SAD candidates evaluated per motion search.
    MeSadPerSearch,
    /// Counter: bytes spent on resync markers + slice headers.
    ResyncMarkerBytes,
    /// Histogram: nanoseconds a slice job waited in the pool queue.
    SliceQueueWaitNs,
    /// Gauge: worker threads the pool last scheduled onto.
    PoolWorkers,
    /// Counter: tasks taken from another worker's deque (or the
    /// injector by a thief) in the work-stealing pool.
    PoolSteals,
    /// Gauge: resolved SIMD kernel tier (0 = scalar, 1 = SSE2,
    /// 2 = AVX2) the dsp dispatch table is serving.
    KernelTier,
}

/// The shape of a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic sum.
    Counter,
    /// Last-written value.
    Gauge,
    /// Log₂-bucket distribution with count and sum.
    Histogram,
}

impl MetricId {
    /// Stable snake_case name used in the JSONL export.
    pub fn name(self) -> &'static str {
        match self {
            MetricId::MeSadPerSearch => "me_sad_per_search",
            MetricId::ResyncMarkerBytes => "resync_marker_bytes",
            MetricId::SliceQueueWaitNs => "slice_queue_wait_ns",
            MetricId::PoolWorkers => "pool_workers",
            MetricId::PoolSteals => "pool_steals",
            MetricId::KernelTier => "kernel_tier",
        }
    }

    /// The metric's shape.
    pub fn kind(self) -> MetricKind {
        match self {
            MetricId::MeSadPerSearch | MetricId::SliceQueueWaitNs => MetricKind::Histogram,
            MetricId::ResyncMarkerBytes | MetricId::PoolSteals => MetricKind::Counter,
            MetricId::PoolWorkers | MetricId::KernelTier => MetricKind::Gauge,
        }
    }
}

#[derive(Debug)]
struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record(&self, v: u64) {
        let idx = (64 - v.leading_zeros() as usize).min(HIST_BUCKETS - 1);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    fn to_json_fields(&self) -> Vec<(&'static str, Json)> {
        let count = self.count.load(Ordering::Relaxed);
        let sum = self.sum.load(Ordering::Relaxed);
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                // Upper bound (inclusive) of values with bit length i.
                let le = if i == 0 { 0 } else { (1u64 << i) - 1 };
                buckets.push(Json::obj(vec![
                    ("le", Json::Num(le as f64)),
                    ("count", Json::Num(n as f64)),
                ]));
            }
        }
        vec![
            ("count", Json::Num(count as f64)),
            ("sum", Json::Num(sum as f64)),
            ("buckets", Json::Arr(buckets)),
        ]
    }
}

/// The per-session metric store. All operations are atomic, so worker
/// threads record through a shared reference.
#[derive(Debug)]
pub(crate) struct Registry {
    me_sad_per_search: Histogram,
    resync_marker_bytes: AtomicU64,
    slice_queue_wait_ns: Histogram,
    pool_workers: AtomicU64,
    pool_steals: AtomicU64,
    kernel_tier: AtomicU64,
}

impl Registry {
    pub(crate) fn new() -> Self {
        Registry {
            me_sad_per_search: Histogram::new(),
            resync_marker_bytes: AtomicU64::new(0),
            slice_queue_wait_ns: Histogram::new(),
            pool_workers: AtomicU64::new(0),
            pool_steals: AtomicU64::new(0),
            kernel_tier: AtomicU64::new(0),
        }
    }

    pub(crate) fn counter_add(&self, id: MetricId, v: u64) {
        debug_assert_eq!(id.kind(), MetricKind::Counter, "{id:?} is not a counter");
        match id {
            MetricId::ResyncMarkerBytes => {
                self.resync_marker_bytes.fetch_add(v, Ordering::Relaxed);
            }
            MetricId::PoolSteals => {
                self.pool_steals.fetch_add(v, Ordering::Relaxed);
            }
            _ => {}
        }
    }

    pub(crate) fn gauge_set(&self, id: MetricId, v: u64) {
        debug_assert_eq!(id.kind(), MetricKind::Gauge, "{id:?} is not a gauge");
        match id {
            MetricId::PoolWorkers => self.pool_workers.store(v, Ordering::Relaxed),
            MetricId::KernelTier => self.kernel_tier.store(v, Ordering::Relaxed),
            _ => {}
        }
    }

    pub(crate) fn histogram_record(&self, id: MetricId, v: u64) {
        debug_assert_eq!(
            id.kind(),
            MetricKind::Histogram,
            "{id:?} is not a histogram"
        );
        match id {
            MetricId::MeSadPerSearch => self.me_sad_per_search.record(v),
            MetricId::SliceQueueWaitNs => self.slice_queue_wait_ns.record(v),
            _ => {}
        }
    }

    /// One JSON object per line, deterministic order.
    pub(crate) fn to_jsonl(&self) -> String {
        let scalar = |id: MetricId, kind: &str, v: u64| {
            Json::obj(vec![
                ("metric", Json::str(id.name())),
                ("kind", Json::str(kind)),
                ("value", Json::Num(v as f64)),
            ])
        };
        let hist = |id: MetricId, h: &Histogram| {
            let mut fields = vec![
                ("metric", Json::str(id.name())),
                ("kind", Json::str("histogram")),
            ];
            fields.extend(h.to_json_fields());
            Json::obj(fields)
        };
        let lines = [
            hist(MetricId::MeSadPerSearch, &self.me_sad_per_search),
            scalar(
                MetricId::ResyncMarkerBytes,
                "counter",
                self.resync_marker_bytes.load(Ordering::Relaxed),
            ),
            hist(MetricId::SliceQueueWaitNs, &self.slice_queue_wait_ns),
            scalar(
                MetricId::PoolWorkers,
                "gauge",
                self.pool_workers.load(Ordering::Relaxed),
            ),
            scalar(
                MetricId::PoolSteals,
                "counter",
                self.pool_steals.load(Ordering::Relaxed),
            ),
            scalar(
                MetricId::KernelTier,
                "gauge",
                self.kernel_tier.load(Ordering::Relaxed),
            ),
        ];
        let mut out = String::new();
        for line in lines {
            // pretty() is multi-line; JSONL needs one line per object.
            out.push_str(&compact(&line));
            out.push('\n');
        }
        out
    }
}

/// Serializes `v` on a single line (JSONL) by reusing the pretty
/// serializer and stripping its layout whitespace. Keys and string
/// values survive intact because the serializer escapes embedded
/// newlines as `\n`.
fn compact(v: &Json) -> String {
    let mut out = String::new();
    let pretty = v.pretty();
    let mut chars = pretty.chars().peekable();
    let mut in_str = false;
    let mut escaped = false;
    while let Some(c) = chars.next() {
        if in_str {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                out.push(c);
            }
            '\n' => {
                // Swallow the newline and the following indent.
                while chars.peek() == Some(&' ') {
                    chars.next();
                }
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_bit_length() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1024, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count.load(Ordering::Relaxed), 9);
        assert_eq!(h.buckets[0].load(Ordering::Relaxed), 1); // 0
        assert_eq!(h.buckets[1].load(Ordering::Relaxed), 1); // 1
        assert_eq!(h.buckets[2].load(Ordering::Relaxed), 2); // 2,3
        assert_eq!(h.buckets[3].load(Ordering::Relaxed), 2); // 4,7
        assert_eq!(h.buckets[4].load(Ordering::Relaxed), 1); // 8
        assert_eq!(h.buckets[11].load(Ordering::Relaxed), 1); // 1024
        assert_eq!(h.buckets[HIST_BUCKETS - 1].load(Ordering::Relaxed), 1);
    }

    #[test]
    fn jsonl_lines_parse_back() {
        let r = Registry::new();
        r.counter_add(MetricId::ResyncMarkerBytes, 17);
        r.gauge_set(MetricId::PoolWorkers, 4);
        r.histogram_record(MetricId::MeSadPerSearch, 33);
        r.histogram_record(MetricId::MeSadPerSearch, 12);
        r.histogram_record(MetricId::SliceQueueWaitNs, 100_000);
        let jsonl = r.to_jsonl();
        let mut names = Vec::new();
        for line in jsonl.lines() {
            let doc = Json::parse(line).expect("each line is standalone JSON");
            names.push(doc.get("metric").unwrap().as_str().unwrap().to_string());
            if doc.get("kind").unwrap().as_str() == Some("histogram") {
                assert!(doc.get("count").unwrap().as_f64().is_some());
                assert!(doc.get("buckets").unwrap().as_arr().is_some());
            } else {
                assert!(doc.get("value").unwrap().as_f64().is_some());
            }
        }
        assert_eq!(
            names,
            vec![
                "me_sad_per_search",
                "resync_marker_bytes",
                "slice_queue_wait_ns",
                "pool_workers",
                "pool_steals",
                "kernel_tier"
            ]
        );
        // Spot-check values survive the round trip.
        let resync = Json::parse(jsonl.lines().nth(1).unwrap()).unwrap();
        assert_eq!(resync.get("value").unwrap().as_f64(), Some(17.0));
    }

    #[test]
    fn compact_preserves_strings_with_escapes() {
        let v = Json::obj(vec![("k", Json::str("a\"b\n c"))]);
        let line = compact(&v);
        assert!(!line.contains('\n'));
        assert_eq!(Json::parse(&line).unwrap(), v);
    }
}
