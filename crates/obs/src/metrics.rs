//! A small fixed registry of counters, gauges and log₂-bucket
//! histograms, exported as JSONL via `testkit::json`.
//!
//! The id space is a closed enum rather than string interning: every
//! metric this workload emits is known at compile time, lookups are
//! array indexing, and recording is a single atomic RMW — cheap enough
//! to leave in per-macroblock paths behind the [`enabled`]
//! (crate::enabled) gate.

use m4ps_testkit::json::Json;
use std::sync::atomic::{AtomicU64, Ordering};

/// Buckets in a histogram: bucket `i` counts values whose bit length
/// is `i` (i.e. `v` in `[2^(i-1), 2^i)`; bucket 0 holds zero).
const HIST_BUCKETS: usize = 32;

/// Every metric the workload records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricId {
    /// Histogram: SAD candidates evaluated per motion search.
    MeSadPerSearch,
    /// Counter: bytes spent on resync markers + slice headers.
    ResyncMarkerBytes,
    /// Histogram: nanoseconds a slice job waited in the pool queue.
    SliceQueueWaitNs,
    /// Gauge: worker threads the pool last scheduled onto.
    PoolWorkers,
    /// Counter: tasks taken from another worker's deque (or the
    /// injector by a thief) in the work-stealing pool.
    PoolSteals,
    /// Gauge: resolved SIMD kernel tier (0 = scalar, 1 = SSE2,
    /// 2 = AVX2) the dsp dispatch table is serving.
    KernelTier,
    /// Histogram: nanoseconds from a frame job becoming ready in the
    /// serve scheduler to its encode completing (queueing + encode).
    ServeFrameLatencyNs,
    /// Gauge: sessions currently admitted and not yet finished in the
    /// multi-session service.
    ServeSessionsActive,
    /// Counter: sessions admitted by the service.
    ServeSessionsAccepted,
    /// Counter: sessions rejected at submit by admission control.
    ServeSessionsRejected,
    /// Counter: admitted sessions shed (cancelled early) under
    /// sustained overload.
    ServeSessionsShed,
}

/// The shape of a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic sum.
    Counter,
    /// Last-written value.
    Gauge,
    /// Log₂-bucket distribution with count and sum.
    Histogram,
}

impl MetricId {
    /// Stable snake_case name used in the JSONL export.
    pub fn name(self) -> &'static str {
        match self {
            MetricId::MeSadPerSearch => "me_sad_per_search",
            MetricId::ResyncMarkerBytes => "resync_marker_bytes",
            MetricId::SliceQueueWaitNs => "slice_queue_wait_ns",
            MetricId::PoolWorkers => "pool_workers",
            MetricId::PoolSteals => "pool_steals",
            MetricId::KernelTier => "kernel_tier",
            MetricId::ServeFrameLatencyNs => "serve_frame_latency_ns",
            MetricId::ServeSessionsActive => "serve_sessions_active",
            MetricId::ServeSessionsAccepted => "serve_sessions_accepted",
            MetricId::ServeSessionsRejected => "serve_sessions_rejected",
            MetricId::ServeSessionsShed => "serve_sessions_shed",
        }
    }

    /// The metric's shape.
    pub fn kind(self) -> MetricKind {
        match self {
            MetricId::MeSadPerSearch
            | MetricId::SliceQueueWaitNs
            | MetricId::ServeFrameLatencyNs => MetricKind::Histogram,
            MetricId::ResyncMarkerBytes
            | MetricId::PoolSteals
            | MetricId::ServeSessionsAccepted
            | MetricId::ServeSessionsRejected
            | MetricId::ServeSessionsShed => MetricKind::Counter,
            MetricId::PoolWorkers | MetricId::KernelTier | MetricId::ServeSessionsActive => {
                MetricKind::Gauge
            }
        }
    }
}

#[derive(Debug)]
struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record(&self, v: u64) {
        let idx = (64 - v.leading_zeros() as usize).min(HIST_BUCKETS - 1);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }

    fn to_json_fields(&self) -> Vec<(&'static str, Json)> {
        let count = self.count.load(Ordering::Relaxed);
        let sum = self.sum.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                // Upper bound (inclusive) of values with bit length i.
                let le = if i == 0 { 0 } else { (1u64 << i) - 1 };
                buckets.push(Json::obj(vec![
                    ("le", Json::Num(le as f64)),
                    ("count", Json::Num(n as f64)),
                ]));
            }
        }
        vec![
            ("count", Json::Num(count as f64)),
            ("sum", Json::Num(sum as f64)),
            ("max", Json::Num(max as f64)),
            ("buckets", Json::Arr(buckets)),
        ]
    }
}

/// A point-in-time copy of a log₂-bucket histogram, with quantile
/// estimation. Snapshots subtract (`delta_since`), which is what the
/// serve admission controller uses to watch a sliding window of queue
/// waits instead of the session-lifetime distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total values recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Largest value recorded (exact, not bucket-quantized). Shed and
    /// SLO decisions read this for the tail beyond p99: a single 2 s
    /// outlier is invisible to interpolated quantiles over a handful
    /// of samples but shows up here exactly.
    pub max: u64,
    /// Bucket `i` counts values with bit length `i` (bucket 0 = zero).
    pub buckets: [u64; HIST_BUCKETS],
}

impl HistogramSnapshot {
    /// An empty snapshot (no samples).
    pub fn empty() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) by linear
    /// interpolation inside the log₂ bucket holding the target rank.
    /// Returns 0 for an empty snapshot. The estimate is exact at
    /// bucket boundaries and within one bucket's width otherwise;
    /// values beyond the last bucket saturate at its upper edge
    /// (`2^31 - 1`, ~2.1 s when recording nanoseconds).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based rank of the sample that sits at quantile q.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let lo = if i == 0 { 0 } else { 1u64 << (i - 1) };
                let hi = if i == 0 { 0 } else { (1u64 << i) - 1 };
                let into = (rank - seen) as f64 / n as f64;
                return lo + ((hi - lo) as f64 * into) as u64;
            }
            seen += n;
        }
        // Unreachable when count == sum of buckets; be defensive for
        // torn concurrent reads.
        (1u64 << (HIST_BUCKETS - 1)) - 1
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th-percentile estimate.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The distribution of samples recorded since `earlier` was
    /// taken. Saturating per field, so a torn read (snapshot taken
    /// mid-record on another thread) cannot underflow. `max` cannot be
    /// windowed from two running maxima, so the delta carries the
    /// lifetime max up to the later snapshot — a correct upper bound
    /// on the window's max — or 0 when the window is empty.
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let count = self.count.saturating_sub(earlier.count);
        HistogramSnapshot {
            count,
            sum: self.sum.saturating_sub(earlier.sum),
            max: if count == 0 { 0 } else { self.max },
            buckets: std::array::from_fn(|i| self.buckets[i].saturating_sub(earlier.buckets[i])),
        }
    }
}

/// The per-session metric store. All operations are atomic, so worker
/// threads record through a shared reference.
#[derive(Debug)]
pub(crate) struct Registry {
    me_sad_per_search: Histogram,
    resync_marker_bytes: AtomicU64,
    slice_queue_wait_ns: Histogram,
    pool_workers: AtomicU64,
    pool_steals: AtomicU64,
    kernel_tier: AtomicU64,
    serve_frame_latency_ns: Histogram,
    serve_sessions_active: AtomicU64,
    serve_sessions_accepted: AtomicU64,
    serve_sessions_rejected: AtomicU64,
    serve_sessions_shed: AtomicU64,
}

impl Registry {
    pub(crate) fn new() -> Self {
        Registry {
            me_sad_per_search: Histogram::new(),
            resync_marker_bytes: AtomicU64::new(0),
            slice_queue_wait_ns: Histogram::new(),
            pool_workers: AtomicU64::new(0),
            pool_steals: AtomicU64::new(0),
            kernel_tier: AtomicU64::new(0),
            serve_frame_latency_ns: Histogram::new(),
            serve_sessions_active: AtomicU64::new(0),
            serve_sessions_accepted: AtomicU64::new(0),
            serve_sessions_rejected: AtomicU64::new(0),
            serve_sessions_shed: AtomicU64::new(0),
        }
    }

    pub(crate) fn counter_add(&self, id: MetricId, v: u64) {
        debug_assert_eq!(id.kind(), MetricKind::Counter, "{id:?} is not a counter");
        match id {
            MetricId::ResyncMarkerBytes => {
                self.resync_marker_bytes.fetch_add(v, Ordering::Relaxed);
            }
            MetricId::PoolSteals => {
                self.pool_steals.fetch_add(v, Ordering::Relaxed);
            }
            MetricId::ServeSessionsAccepted => {
                self.serve_sessions_accepted.fetch_add(v, Ordering::Relaxed);
            }
            MetricId::ServeSessionsRejected => {
                self.serve_sessions_rejected.fetch_add(v, Ordering::Relaxed);
            }
            MetricId::ServeSessionsShed => {
                self.serve_sessions_shed.fetch_add(v, Ordering::Relaxed);
            }
            _ => {}
        }
    }

    pub(crate) fn counter_value(&self, id: MetricId) -> u64 {
        debug_assert_eq!(id.kind(), MetricKind::Counter, "{id:?} is not a counter");
        match id {
            MetricId::ResyncMarkerBytes => self.resync_marker_bytes.load(Ordering::Relaxed),
            MetricId::PoolSteals => self.pool_steals.load(Ordering::Relaxed),
            MetricId::ServeSessionsAccepted => self.serve_sessions_accepted.load(Ordering::Relaxed),
            MetricId::ServeSessionsRejected => self.serve_sessions_rejected.load(Ordering::Relaxed),
            MetricId::ServeSessionsShed => self.serve_sessions_shed.load(Ordering::Relaxed),
            _ => 0,
        }
    }

    pub(crate) fn gauge_set(&self, id: MetricId, v: u64) {
        debug_assert_eq!(id.kind(), MetricKind::Gauge, "{id:?} is not a gauge");
        match id {
            MetricId::PoolWorkers => self.pool_workers.store(v, Ordering::Relaxed),
            MetricId::KernelTier => self.kernel_tier.store(v, Ordering::Relaxed),
            MetricId::ServeSessionsActive => self.serve_sessions_active.store(v, Ordering::Relaxed),
            _ => {}
        }
    }

    pub(crate) fn gauge_value(&self, id: MetricId) -> u64 {
        debug_assert_eq!(id.kind(), MetricKind::Gauge, "{id:?} is not a gauge");
        match id {
            MetricId::PoolWorkers => self.pool_workers.load(Ordering::Relaxed),
            MetricId::KernelTier => self.kernel_tier.load(Ordering::Relaxed),
            MetricId::ServeSessionsActive => self.serve_sessions_active.load(Ordering::Relaxed),
            _ => 0,
        }
    }

    pub(crate) fn histogram_record(&self, id: MetricId, v: u64) {
        debug_assert_eq!(
            id.kind(),
            MetricKind::Histogram,
            "{id:?} is not a histogram"
        );
        match id {
            MetricId::MeSadPerSearch => self.me_sad_per_search.record(v),
            MetricId::SliceQueueWaitNs => self.slice_queue_wait_ns.record(v),
            MetricId::ServeFrameLatencyNs => self.serve_frame_latency_ns.record(v),
            _ => {}
        }
    }

    pub(crate) fn histogram_snapshot(&self, id: MetricId) -> HistogramSnapshot {
        debug_assert_eq!(
            id.kind(),
            MetricKind::Histogram,
            "{id:?} is not a histogram"
        );
        match id {
            MetricId::MeSadPerSearch => self.me_sad_per_search.snapshot(),
            MetricId::SliceQueueWaitNs => self.slice_queue_wait_ns.snapshot(),
            MetricId::ServeFrameLatencyNs => self.serve_frame_latency_ns.snapshot(),
            _ => HistogramSnapshot::empty(),
        }
    }

    /// One JSON object per line, deterministic order.
    pub(crate) fn to_jsonl(&self) -> String {
        let scalar = |id: MetricId, kind: &str, v: u64| {
            Json::obj(vec![
                ("metric", Json::str(id.name())),
                ("kind", Json::str(kind)),
                ("value", Json::Num(v as f64)),
            ])
        };
        let hist = |id: MetricId, h: &Histogram| {
            let mut fields = vec![
                ("metric", Json::str(id.name())),
                ("kind", Json::str("histogram")),
            ];
            fields.extend(h.to_json_fields());
            Json::obj(fields)
        };
        let lines = [
            hist(MetricId::MeSadPerSearch, &self.me_sad_per_search),
            scalar(
                MetricId::ResyncMarkerBytes,
                "counter",
                self.resync_marker_bytes.load(Ordering::Relaxed),
            ),
            hist(MetricId::SliceQueueWaitNs, &self.slice_queue_wait_ns),
            scalar(
                MetricId::PoolWorkers,
                "gauge",
                self.pool_workers.load(Ordering::Relaxed),
            ),
            scalar(
                MetricId::PoolSteals,
                "counter",
                self.pool_steals.load(Ordering::Relaxed),
            ),
            scalar(
                MetricId::KernelTier,
                "gauge",
                self.kernel_tier.load(Ordering::Relaxed),
            ),
            hist(MetricId::ServeFrameLatencyNs, &self.serve_frame_latency_ns),
            scalar(
                MetricId::ServeSessionsActive,
                "gauge",
                self.serve_sessions_active.load(Ordering::Relaxed),
            ),
            scalar(
                MetricId::ServeSessionsAccepted,
                "counter",
                self.serve_sessions_accepted.load(Ordering::Relaxed),
            ),
            scalar(
                MetricId::ServeSessionsRejected,
                "counter",
                self.serve_sessions_rejected.load(Ordering::Relaxed),
            ),
            scalar(
                MetricId::ServeSessionsShed,
                "counter",
                self.serve_sessions_shed.load(Ordering::Relaxed),
            ),
        ];
        let mut out = String::new();
        for line in lines {
            // pretty() is multi-line; JSONL needs one line per object.
            out.push_str(&compact(&line));
            out.push('\n');
        }
        out
    }
}

/// Serializes `v` on a single line (JSONL) by reusing the pretty
/// serializer and stripping its layout whitespace. Keys and string
/// values survive intact because the serializer escapes embedded
/// newlines as `\n`. Shared with the flight-recorder dump writer.
pub(crate) fn compact(v: &Json) -> String {
    let mut out = String::new();
    let pretty = v.pretty();
    let mut chars = pretty.chars().peekable();
    let mut in_str = false;
    let mut escaped = false;
    while let Some(c) = chars.next() {
        if in_str {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                out.push(c);
            }
            '\n' => {
                // Swallow the newline and the following indent.
                while chars.peek() == Some(&' ') {
                    chars.next();
                }
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_bit_length() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1024, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count.load(Ordering::Relaxed), 9);
        assert_eq!(h.buckets[0].load(Ordering::Relaxed), 1); // 0
        assert_eq!(h.buckets[1].load(Ordering::Relaxed), 1); // 1
        assert_eq!(h.buckets[2].load(Ordering::Relaxed), 2); // 2,3
        assert_eq!(h.buckets[3].load(Ordering::Relaxed), 2); // 4,7
        assert_eq!(h.buckets[4].load(Ordering::Relaxed), 1); // 8
        assert_eq!(h.buckets[11].load(Ordering::Relaxed), 1); // 1024
        assert_eq!(h.buckets[HIST_BUCKETS - 1].load(Ordering::Relaxed), 1);
    }

    #[test]
    fn jsonl_lines_parse_back() {
        let r = Registry::new();
        r.counter_add(MetricId::ResyncMarkerBytes, 17);
        r.gauge_set(MetricId::PoolWorkers, 4);
        r.histogram_record(MetricId::MeSadPerSearch, 33);
        r.histogram_record(MetricId::MeSadPerSearch, 12);
        r.histogram_record(MetricId::SliceQueueWaitNs, 100_000);
        let jsonl = r.to_jsonl();
        let mut names = Vec::new();
        for line in jsonl.lines() {
            let doc = Json::parse(line).expect("each line is standalone JSON");
            names.push(doc.get("metric").unwrap().as_str().unwrap().to_string());
            if doc.get("kind").unwrap().as_str() == Some("histogram") {
                assert!(doc.get("count").unwrap().as_f64().is_some());
                assert!(doc.get("buckets").unwrap().as_arr().is_some());
            } else {
                assert!(doc.get("value").unwrap().as_f64().is_some());
            }
        }
        assert_eq!(
            names,
            vec![
                "me_sad_per_search",
                "resync_marker_bytes",
                "slice_queue_wait_ns",
                "pool_workers",
                "pool_steals",
                "kernel_tier",
                "serve_frame_latency_ns",
                "serve_sessions_active",
                "serve_sessions_accepted",
                "serve_sessions_rejected",
                "serve_sessions_shed"
            ]
        );
        // Spot-check values survive the round trip.
        let resync = Json::parse(jsonl.lines().nth(1).unwrap()).unwrap();
        assert_eq!(resync.get("value").unwrap().as_f64(), Some(17.0));
    }

    #[test]
    fn quantiles_pinned_on_known_distribution() {
        // 100 samples: 50× value 1, 40× value 100, 10× value 100_000.
        // Exact ranks: p50 = sample #50 (value 1), p90 = sample #90
        // (value 100), p99 = sample #99 (value 100_000).
        let h = Histogram::new();
        for _ in 0..50 {
            h.record(1);
        }
        for _ in 0..40 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(100_000);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 50 + 40 * 100 + 10 * 100_000);
        // p50 lands at the top of bucket 1 ([1,1]) — exact.
        assert_eq!(s.p50(), 1);
        // p90 is the last sample in bucket 7 ([64,127]) — the
        // interpolated estimate must stay inside the bucket that holds
        // value 100.
        assert!((64..=127).contains(&s.p90()), "p90 = {}", s.p90());
        // p99 is rank 99, the 9th of 10 samples in bucket 17
        // ([65536,131071]), which holds value 100_000.
        assert!((65_536..=131_071).contains(&s.p99()), "p99 = {}", s.p99());
        // Interpolation is monotone in q.
        assert!(s.quantile(0.1) <= s.quantile(0.5));
        assert!(s.quantile(0.5) <= s.quantile(0.9));
        assert!(s.quantile(0.9) <= s.quantile(0.99));
        assert!(s.quantile(0.99) <= s.quantile(1.0));
        // Extremes hit the occupied bucket edges.
        assert_eq!(s.quantile(0.0), 1);
        assert!((65_536..=131_071).contains(&s.quantile(1.0)));
        assert!((s.mean() - 10040.5).abs() < 1e-9);
        // p99.9 of 100 samples is the last sample's bucket; max is the
        // exact largest value, not bucket-quantized.
        assert!(
            (65_536..=131_071).contains(&s.p999()),
            "p999 = {}",
            s.p999()
        );
        assert_eq!(s.max, 100_000);
    }

    #[test]
    fn quantile_empty_and_single() {
        let s = HistogramSnapshot::empty();
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.mean(), 0.0);
        let h = Histogram::new();
        h.record(42);
        let s = h.snapshot();
        // One sample in bucket 6 ([32,63]): every quantile maps into
        // that bucket.
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert!((32..=63).contains(&s.quantile(q)), "q={q}");
        }
    }

    #[test]
    fn snapshot_delta_isolates_window() {
        let h = Histogram::new();
        for _ in 0..10 {
            h.record(8);
        }
        let before = h.snapshot();
        for _ in 0..5 {
            h.record(1_000_000);
        }
        let win = h.snapshot().delta_since(&before);
        assert_eq!(win.count, 5);
        assert_eq!(win.sum, 5_000_000);
        assert_eq!(win.max, 1_000_000, "window max carries the lifetime max");
        let empty_win = h.snapshot().delta_since(&h.snapshot());
        assert_eq!(empty_win.max, 0, "empty window reports no max");
        // The window only holds the slow samples even though the
        // lifetime histogram is dominated by fast ones.
        assert!(win.p50() >= 524_288, "p50 = {}", win.p50());
        // Saturating subtraction on a torn/older snapshot.
        let torn = before.delta_since(&h.snapshot());
        assert_eq!(torn.count, 0);
    }

    #[test]
    fn compact_preserves_strings_with_escapes() {
        let v = Json::obj(vec![("k", Json::str("a\"b\n c"))]);
        let line = compact(&v);
        assert!(!line.contains('\n'));
        assert_eq!(Json::parse(&line).unwrap(), v);
    }
}
