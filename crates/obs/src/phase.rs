//! The fixed set of attribution phases.
//!
//! The set mirrors the paper's SpeedShop function-level tables
//! (Tables 3–6): motion estimation, half-pel SAD refinement, motion
//! compensation, DCT + quantisation, VLC/entropy coding,
//! reconstruction, and bitstream/frame plumbing. Encoder and decoder
//! share the enum — the operation names are symmetric and a study run
//! profiles one direction at a time.

/// An attribution phase. Every span carries exactly one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Phase {
    /// Whole study run (root span; holds everything unattributed).
    Run,
    /// Frame import/export: copying YUV planes into traced buffers.
    FrameIo,
    /// One VOP encode (coarse window, matches the paper's `VopCode()`).
    VopEncode,
    /// One VOP decode (matches `DecodeVopCombMotionShapeTexture()`).
    VopDecode,
    /// One slice job: header, MB loop, resync markers.
    Slice,
    /// Integer-pel motion search (SAD candidate evaluation).
    MeSearch,
    /// Half-pel SAD refinement around the integer winner.
    MeHalfPel,
    /// Motion-compensated prediction (block fetch + interpolation).
    McPredict,
    /// Forward/inverse DCT and (de)quantisation of texture blocks.
    DctQuant,
    /// VLC / entropy coding or decoding of coefficients and headers.
    Vlc,
    /// Reconstruction: residual add + clamp into the reference frame.
    Recon,
    /// Binary alpha-plane (shape) coding or decoding.
    Shape,
    /// Bitstream parsing outside entropy loops (markers, headers).
    Parse,
    /// Scene composition / scalability-layer bookkeeping.
    Compose,
    /// Anything else explicitly instrumented.
    Other,
    /// One decode slice job: resync header, MB parse loop,
    /// reconstruction into the slice's row band.
    DecodeSlice,
}

impl Phase {
    /// Number of phases (array-index domain of [`Phase::ALL`]).
    pub const COUNT: usize = 16;

    /// Every phase, in display order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Run,
        Phase::FrameIo,
        Phase::VopEncode,
        Phase::VopDecode,
        Phase::Slice,
        Phase::MeSearch,
        Phase::MeHalfPel,
        Phase::McPredict,
        Phase::DctQuant,
        Phase::Vlc,
        Phase::Recon,
        Phase::Shape,
        Phase::Parse,
        Phase::Compose,
        Phase::Other,
        Phase::DecodeSlice,
    ];

    /// Stable dotted name, used in reports, JSONL and trace events.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Run => "run",
            Phase::FrameIo => "frame.io",
            Phase::VopEncode => "vop.encode",
            Phase::VopDecode => "vop.decode",
            Phase::Slice => "slice",
            Phase::MeSearch => "me.search",
            Phase::MeHalfPel => "me.halfpel",
            Phase::McPredict => "mc.predict",
            Phase::DctQuant => "texture.dctq",
            Phase::Vlc => "texture.vlc",
            Phase::Recon => "texture.recon",
            Phase::Shape => "shape",
            Phase::Parse => "parse",
            Phase::Compose => "compose",
            Phase::Other => "other",
            Phase::DecodeSlice => "slice.decode",
        }
    }

    /// Coarse phases additionally sample wall-clock time and (when
    /// tracing) emit Chrome trace events. They occur per frame or per
    /// slice — never per macroblock — so `Instant::now` stays off the
    /// hot path.
    pub fn is_coarse(self) -> bool {
        matches!(
            self,
            Phase::Run
                | Phase::FrameIo
                | Phase::VopEncode
                | Phase::VopDecode
                | Phase::Slice
                | Phase::DecodeSlice
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_covers_every_phase_once() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(*p as usize, i, "{p:?} out of order");
        }
    }

    #[test]
    fn names_are_unique() {
        for a in Phase::ALL {
            for b in Phase::ALL {
                assert!(a == b || a.name() != b.name());
            }
        }
    }
}
