//! Chrome trace-event export.
//!
//! Emits the JSON Object Format of the Trace Event spec: a
//! `traceEvents` array of complete (`"ph": "X"`) events plus
//! per-thread `thread_name` metadata, loadable in `chrome://tracing`
//! and Perfetto. Timestamps are microseconds from the session epoch.

use m4ps_testkit::json::Json;

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A closed coarse span (`"ph": "X"`).
    Complete {
        /// Phase name (the event's display name).
        name: &'static str,
        /// Session-local thread id.
        tid: u32,
        /// Start, nanoseconds since the session epoch.
        ts_ns: u64,
        /// Duration in nanoseconds.
        dur_ns: u64,
    },
    /// `thread_name` metadata (`"ph": "M"`).
    ThreadName {
        /// Session-local thread id.
        tid: u32,
        /// Display name.
        name: String,
    },
    /// `process_labels` metadata (`"ph": "M"`): free-form labels shown
    /// next to the process in the trace viewer (e.g. `kernels=avx2`).
    ProcessLabel {
        /// Label text.
        label: String,
    },
    /// A closed span with a computed name and numeric args (`"ph":
    /// "X"`) — used by the flight-recorder export, whose names carry
    /// frame/session ids and so cannot be `&'static str`.
    Span {
        /// Display name (e.g. `frame 3`).
        name: String,
        /// Lane id.
        tid: u32,
        /// Start, nanoseconds since the dump epoch.
        ts_ns: u64,
        /// Duration in nanoseconds.
        dur_ns: u64,
        /// Numeric args shown in the viewer's detail pane.
        args: Vec<(&'static str, f64)>,
    },
    /// An instant event (`"ph": "i"`, thread scope): a point in time
    /// with no duration — admission decisions, steals, parks, wakes.
    Instant {
        /// Display name.
        name: String,
        /// Lane id.
        tid: u32,
        /// Timestamp, nanoseconds since the dump epoch.
        ts_ns: u64,
        /// Numeric args shown in the viewer's detail pane.
        args: Vec<(&'static str, f64)>,
    },
}

const PID: f64 = 1.0;

fn us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

impl TraceEvent {
    fn to_json(&self) -> Json {
        match self {
            TraceEvent::Complete {
                name,
                tid,
                ts_ns,
                dur_ns,
            } => Json::obj(vec![
                ("name", Json::str(*name)),
                ("cat", Json::str("m4ps")),
                ("ph", Json::str("X")),
                ("ts", Json::Num(us(*ts_ns))),
                ("dur", Json::Num(us(*dur_ns))),
                ("pid", Json::Num(PID)),
                ("tid", Json::Num(f64::from(*tid))),
            ]),
            TraceEvent::ThreadName { tid, name } => Json::obj(vec![
                ("name", Json::str("thread_name")),
                ("ph", Json::str("M")),
                ("pid", Json::Num(PID)),
                ("tid", Json::Num(f64::from(*tid))),
                ("args", Json::obj(vec![("name", Json::str(name.clone()))])),
            ]),
            TraceEvent::ProcessLabel { label } => Json::obj(vec![
                ("name", Json::str("process_labels")),
                ("ph", Json::str("M")),
                ("pid", Json::Num(PID)),
                ("tid", Json::Num(0.0)),
                (
                    "args",
                    Json::obj(vec![("labels", Json::str(label.clone()))]),
                ),
            ]),
            TraceEvent::Span {
                name,
                tid,
                ts_ns,
                dur_ns,
                args,
            } => Json::obj(vec![
                ("name", Json::str(name.clone())),
                ("cat", Json::str("m4ps")),
                ("ph", Json::str("X")),
                ("ts", Json::Num(us(*ts_ns))),
                ("dur", Json::Num(us(*dur_ns))),
                ("pid", Json::Num(PID)),
                ("tid", Json::Num(f64::from(*tid))),
                ("args", args_json(args)),
            ]),
            TraceEvent::Instant {
                name,
                tid,
                ts_ns,
                args,
            } => Json::obj(vec![
                ("name", Json::str(name.clone())),
                ("cat", Json::str("m4ps")),
                ("ph", Json::str("i")),
                ("s", Json::str("t")),
                ("ts", Json::Num(us(*ts_ns))),
                ("pid", Json::Num(PID)),
                ("tid", Json::Num(f64::from(*tid))),
                ("args", args_json(args)),
            ]),
        }
    }
}

fn args_json(args: &[(&'static str, f64)]) -> Json {
    Json::obj(args.iter().map(|&(k, v)| (k, Json::Num(v))).collect())
}

/// Builds the full trace document for a set of events.
pub(crate) fn chrome_trace_json(events: &[TraceEvent]) -> Json {
    Json::obj(vec![
        (
            "traceEvents",
            Json::Arr(events.iter().map(TraceEvent::to_json).collect()),
        ),
        ("displayTimeUnit", Json::str("ms")),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_document_round_trips() {
        let events = vec![
            TraceEvent::ThreadName {
                tid: 0,
                name: "m4ps-0".to_string(),
            },
            TraceEvent::Complete {
                name: "vop.encode",
                tid: 0,
                ts_ns: 1_500,
                dur_ns: 2_000_000,
            },
        ];
        let doc = chrome_trace_json(&events);
        let parsed = Json::parse(&doc.pretty()).unwrap();
        let arr = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("ph").unwrap().as_str(), Some("M"));
        let x = &arr[1];
        assert_eq!(x.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(x.get("ts").unwrap().as_f64(), Some(1.5));
        assert_eq!(x.get("dur").unwrap().as_f64(), Some(2000.0));
        assert_eq!(x.get("tid").unwrap().as_f64(), Some(0.0));
        assert_eq!(parsed.get("displayTimeUnit").unwrap().as_str(), Some("ms"));
    }
}
