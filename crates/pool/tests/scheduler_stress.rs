//! Torture tests for the persistent work-stealing scheduler.
//!
//! The encoder's correctness story leans on three scheduler promises:
//! every spawned task runs exactly once (chained continuations
//! included), a panicking task reaches the scope owner without
//! deadlocking the pool, and none of this depends on worker count.
//! These tests hammer those promises with thousands of tiny
//! dependency-ordered tasks, skewed costs and injected panics, all
//! driven by the testkit PRNG so failures replay from a seed.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use m4ps_pool::{Scope, WorkerPool};
use m4ps_testkit::Rng;

/// Spin for a PRNG-chosen cost so task durations are heavily skewed
/// (most are near-free, a few are ~1000x longer) without sleeping.
fn burn(cost: u64) -> u64 {
    let mut acc = cost;
    for k in 0..cost {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
    }
    std::hint::black_box(acc)
}

/// One dependency chain: `links` sequential steps, each spawned as the
/// continuation of the previous, each adding its (chain, depth) tag to
/// a shared checksum. The final step bumps `finished`.
fn run_chain<'s>(
    s: &Scope<'s>,
    chain: u64,
    depth: u64,
    links: u64,
    cost: u64,
    checksum: &'s AtomicU64,
    finished: &'s AtomicUsize,
) {
    burn(cost % 997);
    checksum.fetch_add(chain.wrapping_mul(1_000_003) ^ depth, Ordering::Relaxed);
    if depth + 1 < links {
        let mut state = cost;
        let next_cost = m4ps_testkit::rng::splitmix64(&mut state);
        s.spawn(move |s| run_chain(s, chain, depth + 1, links, next_cost, checksum, finished));
    } else {
        finished.fetch_add(1, Ordering::Relaxed);
    }
}

/// Expected checksum for `chains` chains of the given lengths.
fn expected_checksum(lengths: &[u64]) -> u64 {
    let mut sum = 0u64;
    for (chain, &links) in lengths.iter().enumerate() {
        for depth in 0..links {
            sum = sum.wrapping_add((chain as u64).wrapping_mul(1_000_003) ^ depth);
        }
    }
    sum
}

#[test]
fn thousands_of_dependency_ordered_tasks_all_run() {
    for (threads, seed) in [(1, 11u64), (2, 22), (4, 33), (8, 44)] {
        let pool = WorkerPool::new(threads);
        let mut rng = Rng::new(seed);
        // ~120 chains × 5..60 links ≈ several thousand tasks, with
        // skewed per-task costs: a tail of tasks ~1000x the median.
        let lengths: Vec<u64> = (0..120).map(|_| rng.gen_range(5u64..60)).collect();
        let checksum = AtomicU64::new(0);
        let finished = AtomicUsize::new(0);
        pool.scope(None, |s| {
            for (chain, &links) in lengths.iter().enumerate() {
                let cost = if rng.gen_range(0u64..10) == 0 {
                    rng.gen_range(500u64..997)
                } else {
                    rng.gen_range(0u64..20)
                };
                let checksum = &checksum;
                let finished = &finished;
                s.spawn(move |s| run_chain(s, chain as u64, 0, links, cost, checksum, finished));
            }
        });
        assert_eq!(
            finished.load(Ordering::Relaxed),
            lengths.len(),
            "threads={threads}: every chain must reach its final link"
        );
        assert_eq!(
            checksum.load(Ordering::Relaxed),
            expected_checksum(&lengths),
            "threads={threads}: every link must run exactly once"
        );
    }
}

#[test]
fn injected_panic_propagates_without_losing_tasks() {
    for threads in [1, 2, 4] {
        let pool = WorkerPool::new(threads);
        let mut rng = Rng::new(threads as u64 * 7 + 1);
        let chains = 40usize;
        let links = 25u64;
        let poison_chain = rng.gen_range(0usize..chains);
        let poison_depth = rng.gen_range(0u64..links);
        let ran = AtomicUsize::new(0);

        fn step<'s>(
            s: &Scope<'s>,
            chain: usize,
            depth: u64,
            links: u64,
            poison: (usize, u64),
            ran: &'s AtomicUsize,
        ) {
            if (chain, depth) == poison {
                panic!("injected failure in chain {chain} at depth {depth}");
            }
            ran.fetch_add(1, Ordering::Relaxed);
            if depth + 1 < links {
                s.spawn(move |s| step(s, chain, depth + 1, links, poison, ran));
            }
        }

        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(None, |s| {
                for chain in 0..chains {
                    let ran = &ran;
                    let poison = (poison_chain, poison_depth);
                    s.spawn(move |s| step(s, chain, 0, links, poison, ran));
                }
            });
        }));
        assert!(caught.is_err(), "threads={threads}: panic must propagate");
        let payload = caught.unwrap_err();
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            msg.contains("injected failure"),
            "threads={threads}: wrong panic payload: {msg:?}"
        );
        // Exactly the poisoned chain stops early; every other chain
        // runs to completion — no unrelated task is lost.
        let expect = (chains - 1) * links as usize + poison_depth as usize;
        assert_eq!(
            ran.load(Ordering::Relaxed),
            expect,
            "threads={threads}: unrelated tasks must not be lost"
        );
        // The pool itself survives and schedules the next scope.
        let after = pool.scope(None, |s| {
            s.spawn(|_| {});
            "alive"
        });
        assert_eq!(after, "alive");
    }
}

#[test]
fn randomized_scope_sequences_stay_quiescent() {
    // Repeated scopes of random shapes on one persistent pool: the
    // steady-state encoder pattern (one scope per VOP, hundreds of
    // VOPs). Any leaked pending count or stuck worker deadlocks here.
    let pool = WorkerPool::new(4);
    let mut rng = Rng::new(0xdecaf);
    for round in 0..200u32 {
        let tasks = rng.gen_range(0usize..30);
        let count = AtomicUsize::new(0);
        pool.scope(None, |s| {
            for _ in 0..tasks {
                let count = &count;
                let fanout = rng.gen_range(0usize..3);
                s.spawn(move |s| {
                    count.fetch_add(1, Ordering::Relaxed);
                    for _ in 0..fanout {
                        s.spawn(move |_| {
                            count.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert!(
            count.load(Ordering::Relaxed) >= tasks,
            "round {round}: scope returned before tasks finished"
        );
    }
}

#[test]
fn stealing_moves_work_under_skew() {
    // One chain is ~1000x more expensive than the rest; with parked
    // workers available, cheap chains must migrate off the owner's
    // injector (observable as steals) while results stay exact.
    let pool = WorkerPool::new(4);
    let total = AtomicU64::new(0);
    let order = Mutex::new(Vec::new());
    pool.scope(None, |s| {
        for i in 0..64u64 {
            let total = &total;
            let order = &order;
            s.spawn(move |_| {
                burn(if i == 0 { 2_000_000 } else { 200 });
                total.fetch_add(i, Ordering::Relaxed);
                order.lock().unwrap().push(i);
            });
        }
    });
    assert_eq!(total.load(Ordering::Relaxed), (0..64).sum::<u64>());
    assert_eq!(order.into_inner().unwrap().len(), 64);
    // On a single-core container the owner may legitimately drain its
    // own injector before any worker wakes, so only sanity-check the
    // counter is readable and monotone.
    let _ = pool.steals();
}
