#[test]
fn jobs_overlap_in_time() {
    let pool = m4ps_pool::ThreadPool::new(4);
    let t0 = std::time::Instant::now();
    let jobs: Vec<_> = (0..4)
        .map(|_| || std::thread::sleep(std::time::Duration::from_millis(200)))
        .collect();
    pool.run(jobs);
    let dt = t0.elapsed();
    assert!(
        dt.as_millis() < 500,
        "4x200ms jobs took {dt:?} on 4 threads"
    );
}
