//! Zero-dependency scoped thread pool for slice-parallel coding.
//!
//! The paper's central finding is that MPEG-4 coding is compute-bound
//! (99.9% L1 hit rate, <2% of bus bandwidth), so the route to "as fast
//! as the hardware allows" is thread-level parallelism, not wider
//! memory. This crate provides the minimal scheduling substrate: a
//! scoped fork/join pool built only on `std::thread::scope` and
//! `std::sync::mpsc` channels, preserving the workspace's registry-free
//! invariant (`tests/hermetic.rs`).
//!
//! Design constraints, in order:
//!
//! 1. **Determinism is the caller's job, scheduling is ours.** The pool
//!    never influences *what* is computed — callers submit a fixed job
//!    list and receive results in submission order, so output is
//!    identical for any worker count (including 1).
//! 2. **Scoped borrows.** Jobs may borrow from the caller's stack
//!    (reference frames, config) because `run` fully joins before
//!    returning.
//! 3. **Panic propagation.** A panicking job panics the calling thread
//!    after all workers have been joined; work is never silently lost.

use std::sync::mpsc;
use std::sync::Mutex;

pub mod steal;

pub use steal::{Scope, WorkerPool};

/// Environment variable overriding the worker-thread count used by
/// [`ThreadPool::from_env`]. Invalid or zero values fall back to the
/// machine's available parallelism.
pub const THREADS_ENV: &str = "M4PS_THREADS";

/// Upper bound on worker threads; far above any slice count we split
/// a VOP into, this only guards against absurd env values.
const MAX_THREADS: usize = 256;

/// A fixed-size pool of logical workers that executes batches of
/// scoped jobs.
///
/// The pool is a value, not a set of parked OS threads: workers are
/// spawned per [`run`](ThreadPool::run) call inside a
/// [`std::thread::scope`] so jobs may borrow local state. For the
/// sub-millisecond-to-millisecond jobs this workload produces (one
/// macroblock-row slice of a VOP), spawn cost is dwarfed by the job
/// body, and keeping no parked threads means no idle state to poison
/// or leak between study runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Creates a pool with exactly `threads` workers (clamped to
    /// `1..=256`).
    pub fn new(threads: usize) -> Self {
        ThreadPool {
            threads: threads.clamp(1, MAX_THREADS),
        }
    }

    /// Creates a pool sized from the `M4PS_THREADS` environment
    /// variable, falling back to the machine's available parallelism
    /// when unset or invalid.
    pub fn from_env() -> Self {
        Self::new(resolve_threads(std::env::var(THREADS_ENV).ok().as_deref()))
    }

    /// Serial pool: one worker, jobs run inline on the caller's thread.
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// Number of workers this pool schedules onto.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every job and returns their results in submission order.
    ///
    /// Jobs are pulled from a shared channel-backed work queue by
    /// `min(threads, jobs.len())` scoped workers, so an expensive job
    /// does not stall the queue behind it. With one worker (or one
    /// job) everything runs inline on the calling thread — no spawn,
    /// no channels — which keeps the serial path zero-overhead and
    /// trivially deterministic.
    ///
    /// # Panics
    ///
    /// If a job panics, the panic is propagated to the caller after
    /// all workers have been joined (via [`std::thread::scope`]).
    pub fn run<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        if jobs.is_empty() {
            return Vec::new();
        }
        let workers = self.threads.min(jobs.len());
        if workers <= 1 {
            return jobs.into_iter().map(|job| job()).collect();
        }

        let n = jobs.len();
        let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);

        // Pre-load the entire batch into the queue, then drop the
        // sender so workers observe end-of-queue via disconnect. The
        // queue lives outside the scope so workers may borrow it.
        let (job_tx, job_rx) = mpsc::channel::<(usize, F)>();
        for job in jobs.into_iter().enumerate() {
            job_tx.send(job).expect("receiver lives on this stack");
        }
        drop(job_tx);
        let queue = Mutex::new(job_rx);
        let (res_tx, res_rx) = mpsc::channel::<(usize, T)>();

        std::thread::scope(|s| {
            for _ in 0..workers {
                let queue = &queue;
                let res_tx = res_tx.clone();
                s.spawn(move || loop {
                    // Hold the queue lock only for the dequeue itself;
                    // the job body runs lock-free.
                    let next = match queue.lock() {
                        Ok(rx) => rx.try_recv(),
                        // A sibling panicked while dequeuing; stop
                        // pulling work and let scope propagate.
                        Err(_) => break,
                    };
                    match next {
                        Ok((idx, job)) => {
                            if res_tx.send((idx, job())).is_err() {
                                break;
                            }
                        }
                        Err(_) => break,
                    }
                });
            }
            drop(res_tx);

            // Collect whatever completed. If a worker panicked its
            // result never arrives; the matching slot stays `None` and
            // `scope` re-raises the worker's panic payload right after
            // this closure returns, before the caller can observe the
            // hole.
            for (idx, value) in res_rx {
                slots[idx] = Some(value);
            }
        });

        slots
            .into_iter()
            .map(|slot| slot.expect("scope propagates worker panics"))
            .collect()
    }

    /// [`run`](ThreadPool::run) with observability: when `session` is
    /// a profiler, every worker thread attaches to it for the batch
    /// (so spans opened inside jobs land in per-thread profiles and
    /// the Chrome trace shows real thread lanes), each job's queue
    /// wait is recorded into the `slice_queue_wait_ns` histogram, and
    /// the `pool_workers` gauge is set to the scheduled worker count.
    ///
    /// With `session = None` this is exactly `run`. Scheduling — and
    /// therefore output — is byte-identical either way; the profiler
    /// only observes.
    ///
    /// # Panics
    ///
    /// Job panics propagate exactly as in [`run`](ThreadPool::run).
    pub fn run_profiled<T, F>(&self, jobs: Vec<F>, session: Option<&m4ps_obs::Profiler>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let Some(session) = session else {
            return self.run(jobs);
        };
        if jobs.is_empty() {
            return Vec::new();
        }
        let workers = self.threads.min(jobs.len());
        m4ps_obs::gauge_set(m4ps_obs::MetricId::PoolWorkers, workers as u64);
        let batch_start = std::time::Instant::now();
        if workers <= 1 {
            // Inline on the caller, which is already attached (attach
            // is reentrant, so the guard below is free if so).
            let _g = session.attach();
            return jobs
                .into_iter()
                .map(|job| {
                    record_queue_wait(batch_start);
                    job()
                })
                .collect();
        }

        let n = jobs.len();
        let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        let (job_tx, job_rx) = mpsc::channel::<(usize, F)>();
        for job in jobs.into_iter().enumerate() {
            job_tx.send(job).expect("receiver lives on this stack");
        }
        drop(job_tx);
        let queue = Mutex::new(job_rx);
        let (res_tx, res_rx) = mpsc::channel::<(usize, T)>();

        std::thread::scope(|s| {
            for _ in 0..workers {
                let queue = &queue;
                let res_tx = res_tx.clone();
                s.spawn(move || {
                    let _g = session.attach();
                    loop {
                        let next = match queue.lock() {
                            Ok(rx) => rx.try_recv(),
                            Err(_) => break,
                        };
                        match next {
                            Ok((idx, job)) => {
                                record_queue_wait(batch_start);
                                if res_tx.send((idx, job())).is_err() {
                                    break;
                                }
                            }
                            Err(_) => break,
                        }
                    }
                });
            }
            drop(res_tx);
            for (idx, value) in res_rx {
                slots[idx] = Some(value);
            }
        });

        slots
            .into_iter()
            .map(|slot| slot.expect("scope propagates worker panics"))
            .collect()
    }
}

/// Records how long a job sat in the queue: dequeue time minus batch
/// submission. The first job a worker pulls measures spawn + schedule
/// latency; later pulls measure genuine queueing behind running jobs.
fn record_queue_wait(batch_start: std::time::Instant) {
    let wait = u64::try_from(batch_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    m4ps_obs::histogram_record(m4ps_obs::MetricId::SliceQueueWaitNs, wait);
}

impl Default for ThreadPool {
    /// Equivalent to [`ThreadPool::from_env`].
    fn default() -> Self {
        Self::from_env()
    }
}

/// Resolves a worker count from an optional `M4PS_THREADS` value:
/// a positive integer wins; anything else falls back to the machine's
/// available parallelism (1 if unknown).
///
/// Split out from [`ThreadPool::from_env`] so tests can cover the
/// parsing rules without mutating process-global environment state.
pub fn resolve_threads(env_value: Option<&str>) -> usize {
    if let Some(v) = env_value {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn empty_job_list_returns_empty() {
        for threads in [1, 4] {
            let pool = ThreadPool::new(threads);
            let out: Vec<u32> = pool.run(Vec::<fn() -> u32>::new());
            assert!(out.is_empty());
        }
    }

    #[test]
    fn results_are_in_submission_order() {
        for threads in [1, 2, 3, 8] {
            let pool = ThreadPool::new(threads);
            let jobs: Vec<_> = (0..17u64)
                .map(|i| {
                    move || {
                        // Skew job cost so completion order differs
                        // from submission order under real parallelism.
                        let spin = (17 - i) * 1000;
                        let mut acc = i;
                        for k in 0..spin {
                            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                        }
                        std::hint::black_box(acc);
                        i * i
                    }
                })
                .collect();
            let out = pool.run(jobs);
            let expect: Vec<u64> = (0..17).map(|i| i * i).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn jobs_may_borrow_caller_state() {
        let data: Vec<u64> = (0..100).collect();
        let pool = ThreadPool::new(4);
        let chunks: Vec<&[u64]> = data.chunks(7).collect();
        let jobs: Vec<_> = chunks
            .iter()
            .map(|c| move || c.iter().sum::<u64>())
            .collect();
        let total: u64 = pool.run(jobs).into_iter().sum();
        assert_eq!(total, data.iter().sum::<u64>());
    }

    #[test]
    fn every_job_runs_exactly_once() {
        static RUNS: AtomicUsize = AtomicUsize::new(0);
        RUNS.store(0, Ordering::SeqCst);
        let pool = ThreadPool::new(3);
        let jobs: Vec<_> = (0..50)
            .map(|_| || RUNS.fetch_add(1, Ordering::SeqCst))
            .collect();
        let out = pool.run(jobs);
        assert_eq!(out.len(), 50);
        assert_eq!(RUNS.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn panic_propagates_to_caller_serial() {
        let pool = ThreadPool::new(1);
        let caught = std::panic::catch_unwind(|| {
            pool.run(vec![
                Box::new(|| 1u32) as Box<dyn FnOnce() -> u32 + Send>,
                { Box::new(|| panic!("slice job failed")) },
            ]);
        });
        assert!(caught.is_err());
    }

    #[test]
    fn panic_propagates_to_caller_parallel() {
        let pool = ThreadPool::new(4);
        let caught = std::panic::catch_unwind(|| {
            let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = (0..8u32)
                .map(|i| {
                    Box::new(move || {
                        if i == 5 {
                            panic!("slice job failed");
                        }
                        i
                    }) as Box<dyn FnOnce() -> u32 + Send>
                })
                .collect();
            pool.run(jobs);
        });
        assert!(caught.is_err(), "worker panic must reach the caller");
    }

    #[test]
    fn thread_count_clamped() {
        assert_eq!(ThreadPool::new(0).threads(), 1);
        assert_eq!(ThreadPool::new(9999).threads(), 256);
        assert_eq!(ThreadPool::serial().threads(), 1);
    }

    #[test]
    fn run_profiled_matches_run_and_records_queue_waits() {
        for threads in [1, 4] {
            let pool = ThreadPool::new(threads);
            let mk_jobs = || (0..8u64).map(|i| move || i * 3).collect::<Vec<_>>();
            let plain = pool.run(mk_jobs());

            let session = m4ps_obs::Profiler::new(false);
            let profiled = pool.run_profiled(mk_jobs(), Some(&session));
            assert_eq!(plain, profiled, "threads={threads}");

            // Every dequeue recorded a wait observation, and the gauge
            // carries the scheduled worker count.
            let jsonl = session.metrics_jsonl();
            let waits = jsonl
                .lines()
                .map(|l| m4ps_testkit::json::Json::parse(l).expect("valid JSONL line"))
                .find(|d| d.get("metric").and_then(|m| m.as_str()) == Some("slice_queue_wait_ns"))
                .expect("queue-wait histogram present");
            assert_eq!(
                waits.get("count").and_then(|c| c.as_f64()),
                Some(8.0),
                "threads={threads}"
            );

            // And None routes through the plain path.
            let unprofiled: Vec<u64> = pool.run_profiled(mk_jobs(), None);
            assert_eq!(plain, unprofiled);
        }
    }

    #[test]
    fn run_profiled_workers_flush_span_profiles() {
        let pool = ThreadPool::new(4);
        let session = m4ps_obs::Profiler::new(false);
        let jobs: Vec<_> = (0..6u64)
            .map(|i| {
                move || {
                    // Simulate a slice job wrapping a forked counter
                    // stream: a domain span with a synthetic delta.
                    let end = m4ps_obs::Counters {
                        loads: i + 1,
                        ..m4ps_obs::Counters::default()
                    };
                    m4ps_obs::enter_domain(m4ps_obs::Phase::Slice, m4ps_obs::Counters::default());
                    m4ps_obs::exit_domain(m4ps_obs::Phase::Slice, end);
                    i
                }
            })
            .collect();
        let out = pool.run_profiled(jobs, Some(&session));
        assert_eq!(out, (0..6).collect::<Vec<_>>());
        let prof = session.profile();
        let slice = prof.get(m4ps_obs::Phase::Slice);
        assert_eq!(slice.entries, 6);
        assert_eq!(slice.counters.loads, (1..=6).sum::<u64>());
    }

    #[test]
    fn resolve_threads_parses_and_falls_back() {
        assert_eq!(resolve_threads(Some("3")), 3);
        assert_eq!(resolve_threads(Some(" 12 ")), 12);
        let fallback = resolve_threads(None);
        assert!(fallback >= 1);
        assert_eq!(resolve_threads(Some("0")), fallback);
        assert_eq!(resolve_threads(Some("zebra")), fallback);
        assert_eq!(resolve_threads(Some("")), fallback);
    }
}
