//! Zero-dependency scoped thread pool for slice-parallel coding.
//!
//! The paper's central finding is that MPEG-4 coding is compute-bound
//! (99.9% L1 hit rate, <2% of bus bandwidth), so the route to "as fast
//! as the hardware allows" is thread-level parallelism, not wider
//! memory. This crate provides the minimal scheduling substrate: a
//! scoped fork/join pool built only on `std::thread::scope` and
//! `std::sync::mpsc` channels, preserving the workspace's registry-free
//! invariant (`tests/hermetic.rs`).
//!
//! Design constraints, in order:
//!
//! 1. **Determinism is the caller's job, scheduling is ours.** The pool
//!    never influences *what* is computed — callers submit a fixed job
//!    list and receive results in submission order, so output is
//!    identical for any worker count (including 1).
//! 2. **Scoped borrows.** Jobs may borrow from the caller's stack
//!    (reference frames, config) because `run` fully joins before
//!    returning.
//! 3. **Panic propagation.** A panicking job panics the calling thread
//!    after all workers have been joined; work is never silently lost.

use std::sync::mpsc;
use std::sync::Mutex;

/// Environment variable overriding the worker-thread count used by
/// [`ThreadPool::from_env`]. Invalid or zero values fall back to the
/// machine's available parallelism.
pub const THREADS_ENV: &str = "M4PS_THREADS";

/// Upper bound on worker threads; far above any slice count we split
/// a VOP into, this only guards against absurd env values.
const MAX_THREADS: usize = 256;

/// A fixed-size pool of logical workers that executes batches of
/// scoped jobs.
///
/// The pool is a value, not a set of parked OS threads: workers are
/// spawned per [`run`](ThreadPool::run) call inside a
/// [`std::thread::scope`] so jobs may borrow local state. For the
/// sub-millisecond-to-millisecond jobs this workload produces (one
/// macroblock-row slice of a VOP), spawn cost is dwarfed by the job
/// body, and keeping no parked threads means no idle state to poison
/// or leak between study runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Creates a pool with exactly `threads` workers (clamped to
    /// `1..=256`).
    pub fn new(threads: usize) -> Self {
        ThreadPool {
            threads: threads.clamp(1, MAX_THREADS),
        }
    }

    /// Creates a pool sized from the `M4PS_THREADS` environment
    /// variable, falling back to the machine's available parallelism
    /// when unset or invalid.
    pub fn from_env() -> Self {
        Self::new(resolve_threads(std::env::var(THREADS_ENV).ok().as_deref()))
    }

    /// Serial pool: one worker, jobs run inline on the caller's thread.
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// Number of workers this pool schedules onto.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every job and returns their results in submission order.
    ///
    /// Jobs are pulled from a shared channel-backed work queue by
    /// `min(threads, jobs.len())` scoped workers, so an expensive job
    /// does not stall the queue behind it. With one worker (or one
    /// job) everything runs inline on the calling thread — no spawn,
    /// no channels — which keeps the serial path zero-overhead and
    /// trivially deterministic.
    ///
    /// # Panics
    ///
    /// If a job panics, the panic is propagated to the caller after
    /// all workers have been joined (via [`std::thread::scope`]).
    pub fn run<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        if jobs.is_empty() {
            return Vec::new();
        }
        let workers = self.threads.min(jobs.len());
        if workers <= 1 {
            return jobs.into_iter().map(|job| job()).collect();
        }

        let n = jobs.len();
        let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);

        // Pre-load the entire batch into the queue, then drop the
        // sender so workers observe end-of-queue via disconnect. The
        // queue lives outside the scope so workers may borrow it.
        let (job_tx, job_rx) = mpsc::channel::<(usize, F)>();
        for job in jobs.into_iter().enumerate() {
            job_tx.send(job).expect("receiver lives on this stack");
        }
        drop(job_tx);
        let queue = Mutex::new(job_rx);
        let (res_tx, res_rx) = mpsc::channel::<(usize, T)>();

        std::thread::scope(|s| {
            for _ in 0..workers {
                let queue = &queue;
                let res_tx = res_tx.clone();
                s.spawn(move || loop {
                    // Hold the queue lock only for the dequeue itself;
                    // the job body runs lock-free.
                    let next = match queue.lock() {
                        Ok(rx) => rx.try_recv(),
                        // A sibling panicked while dequeuing; stop
                        // pulling work and let scope propagate.
                        Err(_) => break,
                    };
                    match next {
                        Ok((idx, job)) => {
                            if res_tx.send((idx, job())).is_err() {
                                break;
                            }
                        }
                        Err(_) => break,
                    }
                });
            }
            drop(res_tx);

            // Collect whatever completed. If a worker panicked its
            // result never arrives; the matching slot stays `None` and
            // `scope` re-raises the worker's panic payload right after
            // this closure returns, before the caller can observe the
            // hole.
            for (idx, value) in res_rx {
                slots[idx] = Some(value);
            }
        });

        slots
            .into_iter()
            .map(|slot| slot.expect("scope propagates worker panics"))
            .collect()
    }
}

impl Default for ThreadPool {
    /// Equivalent to [`ThreadPool::from_env`].
    fn default() -> Self {
        Self::from_env()
    }
}

/// Resolves a worker count from an optional `M4PS_THREADS` value:
/// a positive integer wins; anything else falls back to the machine's
/// available parallelism (1 if unknown).
///
/// Split out from [`ThreadPool::from_env`] so tests can cover the
/// parsing rules without mutating process-global environment state.
pub fn resolve_threads(env_value: Option<&str>) -> usize {
    if let Some(v) = env_value {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn empty_job_list_returns_empty() {
        for threads in [1, 4] {
            let pool = ThreadPool::new(threads);
            let out: Vec<u32> = pool.run(Vec::<fn() -> u32>::new());
            assert!(out.is_empty());
        }
    }

    #[test]
    fn results_are_in_submission_order() {
        for threads in [1, 2, 3, 8] {
            let pool = ThreadPool::new(threads);
            let jobs: Vec<_> = (0..17u64)
                .map(|i| {
                    move || {
                        // Skew job cost so completion order differs
                        // from submission order under real parallelism.
                        let spin = (17 - i) * 1000;
                        let mut acc = i;
                        for k in 0..spin {
                            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                        }
                        std::hint::black_box(acc);
                        i * i
                    }
                })
                .collect();
            let out = pool.run(jobs);
            let expect: Vec<u64> = (0..17).map(|i| i * i).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn jobs_may_borrow_caller_state() {
        let data: Vec<u64> = (0..100).collect();
        let pool = ThreadPool::new(4);
        let chunks: Vec<&[u64]> = data.chunks(7).collect();
        let jobs: Vec<_> = chunks
            .iter()
            .map(|c| move || c.iter().sum::<u64>())
            .collect();
        let total: u64 = pool.run(jobs).into_iter().sum();
        assert_eq!(total, data.iter().sum::<u64>());
    }

    #[test]
    fn every_job_runs_exactly_once() {
        static RUNS: AtomicUsize = AtomicUsize::new(0);
        RUNS.store(0, Ordering::SeqCst);
        let pool = ThreadPool::new(3);
        let jobs: Vec<_> = (0..50)
            .map(|_| || RUNS.fetch_add(1, Ordering::SeqCst))
            .collect();
        let out = pool.run(jobs);
        assert_eq!(out.len(), 50);
        assert_eq!(RUNS.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn panic_propagates_to_caller_serial() {
        let pool = ThreadPool::new(1);
        let caught = std::panic::catch_unwind(|| {
            pool.run(vec![
                Box::new(|| 1u32) as Box<dyn FnOnce() -> u32 + Send>,
                { Box::new(|| panic!("slice job failed")) },
            ]);
        });
        assert!(caught.is_err());
    }

    #[test]
    fn panic_propagates_to_caller_parallel() {
        let pool = ThreadPool::new(4);
        let caught = std::panic::catch_unwind(|| {
            let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = (0..8u32)
                .map(|i| {
                    Box::new(move || {
                        if i == 5 {
                            panic!("slice job failed");
                        }
                        i
                    }) as Box<dyn FnOnce() -> u32 + Send>
                })
                .collect();
            pool.run(jobs);
        });
        assert!(caught.is_err(), "worker panic must reach the caller");
    }

    #[test]
    fn thread_count_clamped() {
        assert_eq!(ThreadPool::new(0).threads(), 1);
        assert_eq!(ThreadPool::new(9999).threads(), 256);
        assert_eq!(ThreadPool::serial().threads(), 1);
    }

    #[test]
    fn resolve_threads_parses_and_falls_back() {
        assert_eq!(resolve_threads(Some("3")), 3);
        assert_eq!(resolve_threads(Some(" 12 ")), 12);
        let fallback = resolve_threads(None);
        assert!(fallback >= 1);
        assert_eq!(resolve_threads(Some("0")), fallback);
        assert_eq!(resolve_threads(Some("zebra")), fallback);
        assert_eq!(resolve_threads(Some("")), fallback);
    }
}
