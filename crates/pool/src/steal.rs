//! Persistent work-stealing scheduler for wavefront (MB-row) tasks.
//!
//! [`ThreadPool`](crate::ThreadPool) spawns workers per batch, which is
//! fine for a handful of coarse slice jobs but wrong for wavefront
//! scheduling: one VOP decomposes into dozens of macroblock-row tasks
//! whose continuations are spawned *while the batch runs*, and a study
//! encodes hundreds of VOPs. [`WorkerPool`] therefore keeps its workers
//! parked between scopes:
//!
//! - **Workers are spawned once** (per study, see `m4ps-core`) and pull
//!   tasks from per-worker deques: a worker pops its own deque LIFO
//!   (newest first, keeping a row chain's working set hot in its own
//!   cache) and steals FIFO from the front of a sibling's deque (oldest
//!   first, the task furthest from the victim's cache).
//! - **Tasks may spawn tasks.** A row task enqueues the next row of its
//!   slice as soon as its own dependencies (MV-predictor state, bit
//!   position, forked counter stream) resolve — this is how job
//!   construction overlaps execution.
//! - **The scope owner helps.** [`WorkerPool::scope`] does not return
//!   until every transitively spawned task has finished; while waiting,
//!   the calling thread executes tasks itself. With `threads = 1` there
//!   are no background workers at all and every task runs inline on the
//!   caller, which keeps the serial path deterministic and lock-cheap.
//! - **Panics propagate, work is never silently lost.** A panicking
//!   task's payload is captured; remaining queued tasks still run (a
//!   panicked chain simply stops spawning continuations), and the first
//!   payload is re-raised on the scope owner after quiescence.
//!
//! Scheduling never influences *what* is computed — callers own
//! determinism by constructing identical task graphs for every worker
//! count, exactly as with [`ThreadPool`](crate::ThreadPool).

use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use m4ps_obs::{EventKind, Profiler, Recorder};

use crate::{resolve_threads, THREADS_ENV};

/// Upper bound on workers, mirroring [`crate::ThreadPool`].
const MAX_THREADS: usize = 256;

thread_local! {
    /// Index of the pool worker running on this thread, if any. Spawns
    /// from a worker go to its own deque; spawns from any other thread
    /// (the scope owner) go to the shared injector.
    static WORKER_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
}

/// A task body, lifetime-erased for storage in the deques. The real
/// type is `Box<dyn FnOnce(&Scope<'scope>) + Send + 'scope>`; see the
/// safety argument on [`Scope::spawn`].
type Thunk = Box<dyn FnOnce(&Scope<'static>) + Send + 'static>;

struct Task {
    scope: Arc<ScopeCore>,
    run: Thunk,
    /// Set when the scope is profiled; measured into the
    /// `slice_queue_wait_ns` histogram at dequeue.
    queued_at: Option<Instant>,
}

/// Book-keeping shared by every task of one [`WorkerPool::scope`] call.
struct ScopeCore {
    /// Tasks spawned but not yet finished (running counts as pending).
    pending: Mutex<usize>,
    /// Signalled on task completion *and* on spawn so the scope owner
    /// re-examines the queues instead of sleeping through new work.
    progress: Condvar,
    /// First panic payload captured from a task.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Profiler session tasks attach to while running, if any.
    session: Option<Profiler>,
    /// Tasks of *this scope* taken from a queue other than the taker's
    /// own deque. Per-scope so concurrent scopes on one pool report
    /// their own steal counts without cross-contamination.
    steals: AtomicU64,
}

impl ScopeCore {
    fn store_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut slot = self.panic.lock().unwrap();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
}

struct SleepState {
    shutdown: bool,
    sleepers: usize,
}

/// State shared between the pool handle, its workers and live scopes.
struct PoolCore {
    /// One deque per background worker.
    deques: Vec<Mutex<VecDeque<Task>>>,
    /// Tasks submitted from outside the pool (the scope owner).
    injector: Mutex<VecDeque<Task>>,
    sleep: Mutex<SleepState>,
    wake: Condvar,
    /// Tasks taken from a queue other than the taker's own deque
    /// (excluding injector pulls, which are submissions, not steals).
    steals: AtomicU64,
    /// Flight recorder queue/steal/park/wake events go to, when the
    /// pool's owner installed one (see [`WorkerPool::set_recorder`]).
    recorder: OnceLock<Recorder>,
}

impl PoolCore {
    fn has_work(&self) -> bool {
        if !self.injector.lock().unwrap().is_empty() {
            return true;
        }
        self.deques.iter().any(|d| !d.lock().unwrap().is_empty())
    }

    /// Enqueues a task: onto the current worker's own deque when called
    /// from inside the pool, onto the injector otherwise; then wakes a
    /// parked worker if any.
    fn push(&self, task: Task) {
        let dest = match WORKER_INDEX.get() {
            Some(i) if i < self.deques.len() => {
                self.deques[i].lock().unwrap().push_back(task);
                i as u64
            }
            _ => {
                self.injector.lock().unwrap().push_back(task);
                u64::MAX
            }
        };
        if let Some(rec) = self.recorder.get() {
            rec.record(EventKind::PoolQueue, None, dest, 0);
        }
        let s = self.sleep.lock().unwrap();
        if s.sleepers > 0 {
            self.wake.notify_all();
        }
    }

    /// Next task for background worker `i`: own deque newest-first,
    /// then the injector, then steal oldest-first from siblings.
    fn find_task_worker(&self, i: usize) -> Option<Task> {
        if let Some(t) = self.deques[i].lock().unwrap().pop_back() {
            return Some(t);
        }
        if let Some(t) = self.injector.lock().unwrap().pop_front() {
            return Some(t);
        }
        let n = self.deques.len();
        for off in 1..n {
            let victim = (i + off) % n;
            if let Some(t) = self.deques[victim].lock().unwrap().pop_front() {
                self.note_steal(&t, victim);
                return Some(t);
            }
        }
        None
    }

    /// Bumps the steal counters and records the flight-recorder event
    /// (thief = the calling thread's ring, `a` = victim deque index).
    fn note_steal(&self, task: &Task, victim: usize) {
        self.steals.fetch_add(1, Ordering::Relaxed);
        task.scope.steals.fetch_add(1, Ordering::Relaxed);
        if let Some(rec) = self.recorder.get() {
            rec.record(EventKind::PoolSteal, None, victim as u64, 0);
        }
    }

    /// Whether the scope owner helping from `own_scope` may execute
    /// `task`. Its own scope's tasks always qualify (quiescence must
    /// make progress even with zero background workers). Foreign tasks
    /// qualify only when running them here cannot corrupt profiles:
    /// the helping thread is unattached, or the task belongs to the
    /// same session. A thread attached to session A cannot attach to
    /// session B (no-op guard), so running B's task here would land
    /// its spans and queue metrics in A — those tasks are left for
    /// the background workers or B's own owner.
    fn owner_may_run(
        task: &Task,
        own_scope: &Arc<ScopeCore>,
        own_session: Option<&Profiler>,
    ) -> bool {
        if Arc::ptr_eq(&task.scope, own_scope) {
            return true;
        }
        match own_session {
            None => true,
            Some(s) => task
                .scope
                .session
                .as_ref()
                .is_some_and(|t| t.same_session(s)),
        }
    }

    /// Removes the oldest compatible task from `deque`.
    fn take_compatible(
        deque: &Mutex<VecDeque<Task>>,
        own_scope: &Arc<ScopeCore>,
        own_session: Option<&Profiler>,
    ) -> Option<Task> {
        let mut q = deque.lock().unwrap();
        let idx = q
            .iter()
            .position(|t| Self::owner_may_run(t, own_scope, own_session))?;
        q.remove(idx)
    }

    /// Next task for the scope owner: the injector first (its own
    /// submissions), then steal from worker deques. Only tasks the
    /// owner may run without mis-attributing metrics are taken (see
    /// [`PoolCore::owner_may_run`]).
    fn find_task_external(
        &self,
        own_scope: &Arc<ScopeCore>,
        own_session: Option<&Profiler>,
    ) -> Option<Task> {
        if let Some(t) = Self::take_compatible(&self.injector, own_scope, own_session) {
            return Some(t);
        }
        for (victim, d) in self.deques.iter().enumerate() {
            if let Some(t) = Self::take_compatible(d, own_scope, own_session) {
                self.note_steal(&t, victim);
                return Some(t);
            }
        }
        None
    }

    /// Runs one dequeued task: attaches the scope's profiler session,
    /// records queue wait, captures panics, then marks completion.
    fn run_task(self: &Arc<Self>, task: Task) {
        let Task {
            scope,
            run,
            queued_at,
        } = task;
        {
            let _g = scope.session.as_ref().map(|s| s.attach());
            if let Some(at) = queued_at {
                let wait = u64::try_from(at.elapsed().as_nanos()).unwrap_or(u64::MAX);
                // Recorded directly into the task's own session (not
                // via the thread-local attachment): a scope owner
                // helping another scope of the same session is already
                // attached, and the wait must land with the scope that
                // queued the task either way.
                if let Some(sess) = &scope.session {
                    sess.metric_histogram_record(m4ps_obs::MetricId::SliceQueueWaitNs, wait);
                }
            }
            // The erased `Scope<'static>` is only ever *exposed* to the
            // closure at its true lifetime; constructing it from owned
            // Arcs keeps this cast-free.
            let reentry = Scope {
                pool: self.clone(),
                core: scope.clone(),
                _marker: PhantomData,
            };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| (run)(&reentry))) {
                scope.store_panic(payload);
            }
        }
        let mut pending = scope.pending.lock().unwrap();
        *pending -= 1;
        drop(pending);
        scope.progress.notify_all();
    }

    /// Parks the calling worker until work arrives or shutdown; returns
    /// `false` on shutdown.
    fn park(&self) -> bool {
        let mut s = self.sleep.lock().unwrap();
        loop {
            if s.shutdown {
                return false;
            }
            if self.has_work() {
                return true;
            }
            s.sleepers += 1;
            if let Some(rec) = self.recorder.get() {
                rec.record(EventKind::PoolPark, None, 0, 0);
            }
            s = self.wake.wait(s).unwrap();
            s.sleepers -= 1;
            if let Some(rec) = self.recorder.get() {
                rec.record(EventKind::PoolWake, None, 0, 0);
            }
        }
    }
}

fn worker_loop(core: Arc<PoolCore>, index: usize) {
    WORKER_INDEX.set(Some(index));
    loop {
        if let Some(task) = core.find_task_worker(index) {
            core.run_task(task);
            continue;
        }
        if !core.park() {
            return;
        }
    }
}

/// A persistent pool of `threads - 1` parked worker threads plus the
/// participating scope owner. See the module docs for the scheduling
/// policy; see [`WorkerPool::scope`] for the task API.
pub struct WorkerPool {
    core: Arc<PoolCore>,
    handles: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .field("steals", &self.steals())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool of `threads` logical workers (clamped to
    /// `1..=256`): `threads - 1` parked OS threads named
    /// `m4ps-worker-N`, plus the scope owner. `threads = 1` spawns no
    /// threads at all.
    pub fn new(threads: usize) -> Self {
        let threads = threads.clamp(1, MAX_THREADS);
        let background = threads - 1;
        let core = Arc::new(PoolCore {
            deques: (0..background)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            injector: Mutex::new(VecDeque::new()),
            sleep: Mutex::new(SleepState {
                shutdown: false,
                sleepers: 0,
            }),
            wake: Condvar::new(),
            steals: AtomicU64::new(0),
            recorder: OnceLock::new(),
        });
        let handles = (0..background)
            .map(|i| {
                let core = core.clone();
                std::thread::Builder::new()
                    .name(format!("m4ps-worker-{i}"))
                    .spawn(move || worker_loop(core, i))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            core,
            handles,
            threads,
        }
    }

    /// Pool sized from `M4PS_THREADS`, like
    /// [`ThreadPool::from_env`](crate::ThreadPool::from_env).
    pub fn from_env() -> Self {
        Self::new(resolve_threads(std::env::var(THREADS_ENV).ok().as_deref()))
    }

    /// Logical worker count, including the participating scope owner.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Total tasks stolen across the pool's lifetime.
    pub fn steals(&self) -> u64 {
        self.core.steals.load(Ordering::Relaxed)
    }

    /// Installs the flight recorder queue/steal/park/wake events go to.
    /// First caller wins; later calls are no-ops (a pool records into
    /// one recorder for its lifetime — the service that owns it).
    pub fn set_recorder(&self, rec: &Recorder) {
        let _ = self.core.recorder.set(rec.clone());
    }

    /// Runs `f` with a [`Scope`] for spawning tasks and returns once
    /// every transitively spawned task has finished. The calling thread
    /// executes tasks while it waits.
    ///
    /// When `session` is a profiler, each task attaches to it for its
    /// execution (spans land in per-worker trace lanes), queue waits
    /// are recorded into `slice_queue_wait_ns`, steals into
    /// `pool_steals`, and the `pool_workers` gauge is set.
    ///
    /// Nested scopes (calling `scope` from inside a task) are not
    /// supported.
    ///
    /// # Panics
    ///
    /// If any task panicked, the first captured payload is re-raised
    /// here after all tasks have finished.
    pub fn scope<'env, R>(
        &'env self,
        session: Option<&Profiler>,
        f: impl FnOnce(&Scope<'env>) -> R,
    ) -> R {
        if let Some(sess) = session {
            sess.metric_gauge_set(m4ps_obs::MetricId::PoolWorkers, self.threads as u64);
        }
        let core = Arc::new(ScopeCore {
            pending: Mutex::new(0),
            progress: Condvar::new(),
            panic: Mutex::new(None),
            session: session.cloned(),
            steals: AtomicU64::new(0),
        });
        let scope = Scope {
            pool: self.core.clone(),
            core: core.clone(),
            _marker: PhantomData,
        };
        // Even if the scope body panics, spawned tasks still borrow the
        // caller's stack — quiesce before unwinding past it.
        let body = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        self.help_until_quiescent(&core);
        if let Some(sess) = session {
            // The per-scope counter, not a pool-lifetime delta:
            // concurrent scopes each report exactly their own steals.
            let stolen = core.steals.load(Ordering::Relaxed);
            if stolen > 0 {
                sess.metric_counter_add(m4ps_obs::MetricId::PoolSteals, stolen);
            }
        }
        let result = match body {
            Ok(r) => r,
            Err(payload) => resume_unwind(payload),
        };
        if let Some(payload) = core.panic.lock().unwrap().take() {
            resume_unwind(payload);
        }
        result
    }

    /// Executes tasks on the calling thread until the scope is
    /// quiescent (no pending tasks anywhere).
    fn help_until_quiescent(&self, scope: &Arc<ScopeCore>) {
        let _g = scope.session.as_ref().map(|s| s.attach());
        // The session this thread is actually attached to right now
        // (the attach above may have been a no-op if the thread came
        // in attached to a different session). It bounds which foreign
        // tasks may run here — see `owner_may_run`.
        let own_session = m4ps_obs::current();
        loop {
            if let Some(task) = self.core.find_task_external(scope, own_session.as_ref()) {
                self.core.run_task(task);
                continue;
            }
            let pending = scope.pending.lock().unwrap();
            if *pending == 0 {
                return;
            }
            // All pending tasks are running on workers. Their
            // completions (and any spawns) signal `progress`; the
            // timeout guards the scan-vs-spawn race.
            let (guard, _) = scope
                .progress
                .wait_timeout(pending, Duration::from_micros(500))
                .unwrap();
            drop(guard);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut s = self.core.sleep.lock().unwrap();
            s.shutdown = true;
        }
        self.core.wake.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Capability to spawn tasks into a [`WorkerPool::scope`]. Handed to
/// the scope body and to every task, so tasks can enqueue their
/// continuations (the wavefront's "row N+1 ready" edge).
pub struct Scope<'scope> {
    pool: Arc<PoolCore>,
    core: Arc<ScopeCore>,
    /// Invariant over `'scope` so the borrow checker cannot shrink the
    /// region tasks may borrow from.
    _marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Spawns a task. May be called from the scope body or from inside
    /// another task of the same scope; the enclosing
    /// [`WorkerPool::scope`] call does not return until the task (and
    /// everything it spawns) has finished.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        let boxed: Box<dyn FnOnce(&Scope<'scope>) + Send + 'scope> = Box::new(f);
        // SAFETY: lifetime erasure only. `scope` blocks until `pending`
        // reaches zero, and `pending` is incremented below before the
        // task becomes visible, so every borrow in `f` outlives the
        // task's execution. The `Scope<'static>` the thunk receives is
        // constructed from owned `Arc`s and is handed back to `f` at
        // the erased lifetime, which is sound because `Scope` is
        // invariant and grants no lifetime-dependent access.
        let run: Thunk = unsafe {
            std::mem::transmute::<
                Box<dyn FnOnce(&Scope<'scope>) + Send + 'scope>,
                Box<dyn FnOnce(&Scope<'static>) + Send + 'static>,
            >(boxed)
        };
        {
            let mut pending = self.core.pending.lock().unwrap();
            *pending += 1;
        }
        self.pool.push(Task {
            scope: self.core.clone(),
            run,
            queued_at: self.core.session.as_ref().map(|_| Instant::now()),
        });
        // Wake the scope owner too: it may be parked in
        // `help_until_quiescent` after finding the queues empty.
        self.core.progress.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn inline_serial_execution_with_one_thread() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let order = Mutex::new(Vec::new());
        pool.scope(None, |s| {
            for i in 0..4 {
                let order = &order;
                s.spawn(move |s| {
                    order.lock().unwrap().push(i);
                    if i == 0 {
                        s.spawn(move |_| order.lock().unwrap().push(100));
                    }
                });
            }
        });
        let got = order.into_inner().unwrap();
        assert_eq!(got.len(), 5);
        // FIFO injector: the batch runs in spawn order, continuations
        // after.
        assert_eq!(got, vec![0, 1, 2, 3, 100]);
        assert_eq!(pool.steals(), 0);
    }

    #[test]
    fn continuation_chains_complete_across_threads() {
        for threads in [1, 2, 4, 8] {
            let pool = WorkerPool::new(threads);
            let sum = AtomicUsize::new(0);
            pool.scope(None, |s| {
                for chain in 0..7usize {
                    let sum = &sum;
                    fn step<'s>(s: &Scope<'s>, sum: &'s AtomicUsize, chain: usize, depth: usize) {
                        sum.fetch_add(chain + depth, Ordering::Relaxed);
                        if depth < 9 {
                            s.spawn(move |s| step(s, sum, chain, depth + 1));
                        }
                    }
                    s.spawn(move |s| step(s, sum, chain, 0));
                }
            });
            let expect: usize = (0..7).map(|c| (0..10).map(|d| c + d).sum::<usize>()).sum();
            assert_eq!(sum.load(Ordering::Relaxed), expect, "threads={threads}");
        }
    }

    #[test]
    fn scope_body_result_is_returned() {
        let pool = WorkerPool::new(3);
        let n = pool.scope(None, |s| {
            s.spawn(|_| {});
            42
        });
        assert_eq!(n, 42);
    }

    #[test]
    fn task_panic_propagates_after_quiescence() {
        let pool = WorkerPool::new(4);
        let ran = AtomicUsize::new(0);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(None, |s| {
                for i in 0..16 {
                    let ran = &ran;
                    s.spawn(move |_| {
                        if i == 3 {
                            panic!("task failed");
                        }
                        ran.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(caught.is_err(), "task panic must reach the scope owner");
        // Every non-panicking task still ran: no lost work.
        assert_eq!(ran.load(Ordering::Relaxed), 15);
        // The pool survives for the next scope.
        let ok = pool.scope(None, |s| {
            s.spawn(|_| {});
            7
        });
        assert_eq!(ok, 7);
    }

    #[test]
    fn pool_reuse_across_many_scopes() {
        let pool = WorkerPool::new(4);
        for round in 0..50usize {
            let count = AtomicUsize::new(0);
            pool.scope(None, |s| {
                for _ in 0..round % 5 {
                    let count = &count;
                    s.spawn(move |_| {
                        count.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(count.load(Ordering::Relaxed), round % 5);
        }
    }

    #[test]
    fn profiled_scope_records_pool_metrics() {
        let pool = WorkerPool::new(2);
        let session = Profiler::new(false);
        pool.scope(Some(&session), |s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    std::thread::sleep(Duration::from_micros(50));
                });
            }
        });
        let jsonl = session.metrics_jsonl();
        let workers = jsonl
            .lines()
            .map(|l| m4ps_testkit::json::Json::parse(l).expect("valid JSONL"))
            .find(|d| d.get("metric").and_then(|m| m.as_str()) == Some("pool_workers"))
            .expect("pool_workers gauge present");
        assert_eq!(workers.get("value").unwrap().as_f64(), Some(2.0));
        let waits = jsonl
            .lines()
            .map(|l| m4ps_testkit::json::Json::parse(l).expect("valid JSONL"))
            .find(|d| d.get("metric").and_then(|m| m.as_str()) == Some("slice_queue_wait_ns"))
            .expect("queue-wait histogram present");
        assert_eq!(waits.get("count").unwrap().as_f64(), Some(8.0));
    }

    #[test]
    fn recorder_sees_queue_and_steal_events() {
        let pool = WorkerPool::new(4);
        let rec = Recorder::new(256);
        pool.set_recorder(&rec);
        pool.scope(None, |s| {
            for _ in 0..32 {
                s.spawn(|_| {
                    std::thread::sleep(Duration::from_micros(20));
                });
            }
        });
        let dump = rec.snapshot();
        let queued = dump
            .events
            .iter()
            .filter(|e| e.ev.kind == EventKind::PoolQueue)
            .count();
        assert_eq!(queued, 32, "every spawn records one queue event");
        // Owner submissions from outside the pool land in the injector.
        assert!(dump
            .events
            .iter()
            .filter(|e| e.ev.kind == EventKind::PoolQueue)
            .all(|e| e.ev.a == u64::MAX));
        let stolen = dump
            .events
            .iter()
            .filter(|e| e.ev.kind == EventKind::PoolSteal)
            .count() as u64;
        assert_eq!(stolen, pool.steals(), "steal events match the counter");
    }

    #[test]
    fn concurrent_scopes_keep_metrics_isolated() {
        use m4ps_obs::MetricId;
        // Three driver threads share one pool, each running profiled
        // scopes under its own session. Every session must see exactly
        // its own queue waits and steals, at any interleaving.
        let pool = WorkerPool::new(4);
        let sessions: Vec<Profiler> = (0..3).map(|_| Profiler::new(false)).collect();
        let per_session_tasks: Vec<usize> = (0..3).map(|k| (k + 1) * 4).collect();
        std::thread::scope(|ts| {
            for (k, sess) in sessions.iter().enumerate() {
                let pool = &pool;
                let tasks = per_session_tasks[k];
                ts.spawn(move || {
                    let _g = sess.attach();
                    for _round in 0..5 {
                        pool.scope(Some(sess), |s| {
                            for _ in 0..tasks {
                                s.spawn(|_| {
                                    std::thread::sleep(Duration::from_micros(20));
                                });
                            }
                        });
                    }
                });
            }
        });
        for (k, sess) in sessions.iter().enumerate() {
            let expect = (5 * per_session_tasks[k]) as u64;
            let waits = sess.histogram_snapshot(MetricId::SliceQueueWaitNs);
            assert_eq!(waits.count, expect, "session {k} queue-wait count");
            // A task is stolen at most once, so a correctly attributed
            // per-session steal count can never exceed the session's
            // own task count (the old pool-lifetime delta could).
            let steals = sess.metric_counter_value(MetricId::PoolSteals);
            assert!(
                steals <= expect,
                "session {k}: steals {steals} > tasks {expect}"
            );
        }
    }
}
