//! No-harness benchmark runner.
//!
//! Replaces criterion for this repo's needs: each benchmark is timed
//! over `samples` samples of a fixed per-sample iteration budget
//! (calibrated once during warmup), and reported as the **median**
//! ns/iteration with the **median absolute deviation** (MAD) as the
//! robust spread estimate. Results are printed as a table and written
//! to a machine-readable `BENCH_<suite>.json` so the repo's perf
//! trajectory can be tracked across PRs.
//!
//! Wire-up in a `[[bench]] harness = false` target:
//!
//! ```no_run
//! use m4ps_testkit::bench::{black_box, BenchRunner};
//!
//! let mut r = BenchRunner::from_args("kernels");
//! r.bench("sum_1k", || (0..1000u64).map(black_box).sum::<u64>());
//! r.finish();
//! ```
//!
//! CLI flags (after `cargo bench --bench kernels --`):
//!
//! - `--smoke` — minimal budget (fast CI signal, same JSON schema),
//! - `--json <path>` — where to write the report (default
//!   `BENCH_<suite>.json` in the current directory),
//! - `--samples <n>` — sample count override,
//! - any other non-flag argument — substring filter on bench names
//!   (`--bench`, which cargo itself appends, is ignored).

pub use std::hint::black_box;

use crate::json::Json;
use std::time::Instant;

/// Runner configuration, normally parsed from the command line by
/// [`BenchRunner::from_args`].
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Minimal-budget mode for CI smoke runs.
    pub smoke: bool,
    /// Report path (`None` → `BENCH_<suite>.json`).
    pub json_path: Option<String>,
    /// Samples per benchmark.
    pub samples: usize,
    /// Target wall time per sample in nanoseconds (drives the
    /// per-sample iteration calibration).
    pub target_sample_ns: u64,
    /// Substring filter on benchmark names.
    pub filter: Option<String>,
}

impl BenchOptions {
    /// Full-budget defaults: 25 samples of ~5 ms each.
    #[must_use]
    pub fn full() -> Self {
        BenchOptions {
            smoke: false,
            json_path: None,
            samples: 25,
            target_sample_ns: 5_000_000,
            filter: None,
        }
    }

    /// Smoke-budget defaults: 7 samples of ~500 µs each.
    #[must_use]
    pub fn smoke() -> Self {
        BenchOptions {
            smoke: true,
            json_path: None,
            samples: 7,
            target_sample_ns: 500_000,
            filter: None,
        }
    }

    /// Parses `args` (without the program name).
    ///
    /// # Panics
    ///
    /// Panics on malformed flag values.
    #[must_use]
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let args: Vec<String> = args.into_iter().collect();
        let mut opts = if args.iter().any(|a| a == "--smoke") {
            BenchOptions::smoke()
        } else {
            BenchOptions::full()
        };
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--smoke" => {}
                // cargo passes --bench to harness=false bench targets.
                "--bench" => {}
                "--json" => {
                    opts.json_path = Some(it.next().expect("--json needs a path"));
                }
                "--samples" => {
                    opts.samples = it
                        .next()
                        .expect("--samples needs a value")
                        .parse()
                        .expect("--samples must be an integer");
                    assert!(opts.samples >= 1, "--samples must be >= 1");
                }
                other if !other.starts_with("--") => {
                    opts.filter = Some(other.to_string());
                }
                other => panic!("unknown bench flag {other}"),
            }
        }
        opts
    }
}

/// One benchmark's summary statistics.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name (`group/name` by convention).
    pub name: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Median absolute deviation of ns/iteration across samples.
    pub mad_ns: f64,
    /// Fastest sample's ns/iteration.
    pub min_ns: f64,
    /// Iterations per sample after calibration.
    pub iters_per_sample: u64,
    /// Number of samples taken.
    pub samples: usize,
    /// Bytes processed per iteration, if declared.
    pub bytes_per_iter: Option<u64>,
    /// Derived throughput in MB/s, if `bytes_per_iter` was declared.
    pub throughput_mb_s: Option<f64>,
}

/// Collects benchmarks, then prints a table and writes the JSON report.
#[derive(Debug)]
pub struct BenchRunner {
    suite: String,
    opts: BenchOptions,
    meta: Vec<(String, String)>,
    results: Vec<BenchResult>,
}

impl BenchRunner {
    /// A runner for `suite` configured from `std::env::args()`.
    #[must_use]
    pub fn from_args(suite: &str) -> Self {
        Self::with_options(suite, BenchOptions::parse(std::env::args().skip(1)))
    }

    /// A runner with explicit options (tests, embedding).
    #[must_use]
    pub fn with_options(suite: &str, opts: BenchOptions) -> Self {
        BenchRunner {
            suite: suite.to_string(),
            opts,
            meta: Vec::new(),
            results: Vec::new(),
        }
    }

    /// Attaches a `key: value` pair to the report's `meta` object:
    /// environment facts (the resolved SIMD kernel tier, machine class)
    /// that decide whether two reports are comparable at all. Setting
    /// an existing key overwrites it.
    pub fn set_meta(&mut self, key: &str, value: &str) {
        self.meta.retain(|(k, _)| k != key);
        self.meta.push((key.to_string(), value.to_string()));
    }

    /// Times `f`, recording the result under `name`. The return value
    /// of `f` is passed through [`black_box`] so the computation is
    /// never optimized away.
    pub fn bench<R>(&mut self, name: &str, f: impl FnMut() -> R) {
        self.bench_inner(name, None, f);
    }

    /// Like [`BenchRunner::bench`] with a declared number of bytes
    /// processed per iteration, which adds MB/s throughput to the
    /// report.
    pub fn bench_bytes<R>(&mut self, name: &str, bytes_per_iter: u64, f: impl FnMut() -> R) {
        self.bench_inner(name, Some(bytes_per_iter), f);
    }

    fn bench_inner<R>(
        &mut self,
        name: &str,
        bytes_per_iter: Option<u64>,
        mut f: impl FnMut() -> R,
    ) {
        if let Some(filter) = &self.opts.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        // Warmup doubles as calibration: grow the iteration count until
        // one batch costs at least a quarter of the sample target, then
        // size the per-sample budget from the observed speed.
        let mut iters: u64 = 1;
        let per_iter_ns = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed().as_nanos() as u64;
            if elapsed >= self.opts.target_sample_ns / 4 || iters >= 1 << 30 {
                break (elapsed.max(1)) as f64 / iters as f64;
            }
            iters *= 2;
        };
        let iters_per_sample =
            ((self.opts.target_sample_ns as f64 / per_iter_ns).ceil() as u64).max(1);

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.opts.samples);
        for _ in 0..self.opts.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            samples_ns.push(elapsed / iters_per_sample as f64);
        }
        let med = median(&mut samples_ns.clone());
        let mut deviations: Vec<f64> = samples_ns.iter().map(|s| (s - med).abs()).collect();
        let mad = median(&mut deviations);
        let min = samples_ns.iter().copied().fold(f64::INFINITY, f64::min);
        let throughput_mb_s = bytes_per_iter.map(|b| b as f64 / 1.0e6 / (med * 1.0e-9));

        let result = BenchResult {
            name: name.to_string(),
            median_ns: med,
            mad_ns: mad,
            min_ns: min,
            iters_per_sample,
            samples: self.opts.samples,
            bytes_per_iter,
            throughput_mb_s,
        };
        print_row(&result);
        self.results.push(result);
    }

    /// The results collected so far.
    #[must_use]
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Renders the JSON report (also what [`BenchRunner::finish`]
    /// writes to disk).
    #[must_use]
    pub fn report_json(&self) -> String {
        Json::obj(vec![
            ("schema", Json::str("m4ps-bench-v1")),
            ("suite", Json::str(self.suite.clone())),
            (
                "mode",
                Json::str(if self.opts.smoke { "smoke" } else { "full" }),
            ),
            ("unit", Json::str("ns_per_iter")),
            (
                "meta",
                Json::obj(
                    self.meta
                        .iter()
                        .map(|(k, v)| (k.as_str(), Json::str(v.clone())))
                        .collect(),
                ),
            ),
            (
                "results",
                Json::Arr(
                    self.results
                        .iter()
                        .map(|r| {
                            Json::obj(vec![
                                ("name", Json::str(r.name.clone())),
                                ("median_ns", Json::Num(r.median_ns)),
                                ("mad_ns", Json::Num(r.mad_ns)),
                                ("min_ns", Json::Num(r.min_ns)),
                                ("iters_per_sample", Json::Num(r.iters_per_sample as f64)),
                                ("samples", Json::Num(r.samples as f64)),
                                (
                                    "bytes_per_iter",
                                    r.bytes_per_iter.map_or(Json::Null, |b| Json::Num(b as f64)),
                                ),
                                (
                                    "throughput_mb_s",
                                    r.throughput_mb_s.map_or(Json::Null, Json::Num),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .pretty()
    }

    /// Writes the JSON report and returns its path.
    ///
    /// # Panics
    ///
    /// Panics if the report cannot be written.
    pub fn finish(self) -> String {
        let path = self
            .opts
            .json_path
            .clone()
            .unwrap_or_else(|| format!("BENCH_{}.json", self.suite));
        std::fs::write(&path, self.report_json())
            .unwrap_or_else(|e| panic!("cannot write bench report {path}: {e}"));
        println!(
            "{} benchmark(s) -> {path} ({} mode)",
            self.results.len(),
            if self.opts.smoke { "smoke" } else { "full" }
        );
        path
    }
}

fn median(values: &mut [f64]) -> f64 {
    assert!(!values.is_empty());
    values.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in timings"));
    let mid = values.len() / 2;
    if values.len() % 2 == 1 {
        values[mid]
    } else {
        (values[mid - 1] + values[mid]) / 2.0
    }
}

fn print_row(r: &BenchResult) {
    let throughput = r
        .throughput_mb_s
        .map_or(String::new(), |t| format!("  {t:10.1} MB/s"));
    println!(
        "{:38} {:>12.1} ns/iter (±{:.1} MAD, {} iters x {} samples){}",
        r.name, r.median_ns, r.mad_ns, r.iters_per_sample, r.samples, throughput
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_opts() -> BenchOptions {
        BenchOptions {
            smoke: true,
            json_path: None,
            samples: 3,
            target_sample_ns: 20_000,
            filter: None,
        }
    }

    #[test]
    fn median_of_odd_and_even() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn runner_measures_and_reports() {
        let mut r = BenchRunner::with_options("selftest", quiet_opts());
        r.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        });
        assert_eq!(r.results().len(), 1);
        let res = &r.results()[0];
        assert!(res.median_ns > 0.0);
        assert!(res.mad_ns >= 0.0);
        assert!(res.min_ns <= res.median_ns);
        assert!(res.iters_per_sample >= 1);
    }

    #[test]
    fn throughput_derives_from_bytes() {
        let mut r = BenchRunner::with_options("selftest", quiet_opts());
        let data = vec![1u8; 4096];
        r.bench_bytes("sum_4k", 4096, || {
            data.iter().map(|&b| b as u64).sum::<u64>()
        });
        let res = &r.results()[0];
        let t = res.throughput_mb_s.expect("throughput");
        let expected = 4096.0 / 1.0e6 / (res.median_ns * 1.0e-9);
        assert!((t - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn filter_skips_nonmatching_benches() {
        let mut opts = quiet_opts();
        opts.filter = Some("dct".into());
        let mut r = BenchRunner::with_options("selftest", opts);
        r.bench("sad/16x16", || 1u32);
        r.bench("dct/forward", || 2u32);
        assert_eq!(r.results().len(), 1);
        assert_eq!(r.results()[0].name, "dct/forward");
    }

    #[test]
    fn json_report_has_schema_and_rows() {
        let mut r = BenchRunner::with_options("selftest", quiet_opts());
        r.bench("one", || 1u32);
        let json = r.report_json();
        assert!(json.contains("\"schema\": \"m4ps-bench-v1\""));
        assert!(json.contains("\"suite\": \"selftest\""));
        assert!(json.contains("\"mode\": \"smoke\""));
        assert!(json.contains("\"median_ns\""));
        assert!(json.contains("\"one\""));
    }

    #[test]
    fn meta_pairs_round_trip_and_overwrite() {
        let mut r = BenchRunner::with_options("selftest", quiet_opts());
        r.set_meta("kernel_tier", "scalar");
        r.set_meta("kernel_tier", "avx2");
        r.set_meta("machine", "o2");
        let doc = Json::parse(&r.report_json()).unwrap();
        let meta = doc.get("meta").expect("meta object");
        assert_eq!(meta.get("kernel_tier").and_then(Json::as_str), Some("avx2"));
        assert_eq!(meta.get("machine").and_then(Json::as_str), Some("o2"));
    }

    #[test]
    fn args_parse_all_flags() {
        let opts = BenchOptions::parse(
            [
                "--bench",
                "--smoke",
                "--json",
                "out.json",
                "--samples",
                "9",
                "dct",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        assert!(opts.smoke);
        assert_eq!(opts.json_path.as_deref(), Some("out.json"));
        assert_eq!(opts.samples, 9);
        assert_eq!(opts.filter.as_deref(), Some("dct"));
    }
}
