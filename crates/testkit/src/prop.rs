//! Minimal property-testing harness.
//!
//! A property test here is three parts: a **generator** (any
//! `Fn(&mut Rng) -> T`, usually built from the combinators on
//! [`Rng`]), a **property** (`Fn(&T) -> Result<(), String>`, written
//! with the [`prop_assert!`]/[`prop_assert_eq!`] macros), and the
//! [`check`] driver that runs the property over `cases` inputs derived
//! deterministically from a base seed.
//!
//! Failure reporting is by *seed*, not by shrinking: every case is
//! generated from its own 64-bit seed, printed on failure, and can be
//! replayed alone with `M4PS_PROP_REPLAY=0x<seed>`. Known-bad inputs
//! are pinned forever as explicit values via [`check_pinned`] (or as
//! plain named unit tests) — this replaces proptest's
//! `.proptest-regressions` files with cases that are visible in the
//! source and survive generator changes.
//!
//! Environment knobs:
//!
//! - `M4PS_PROP_CASES` — cases per property (default 128),
//! - `M4PS_PROP_SEED` — base seed (default stable; change to explore),
//! - `M4PS_PROP_REPLAY` — run exactly one case from this seed.
//!
//! # Examples
//!
//! ```
//! use m4ps_testkit::prop::{check, Config};
//! use m4ps_testkit::prop_assert_eq;
//!
//! check(
//!     "reverse twice is identity",
//!     &Config::default(),
//!     |rng| rng.vec(0..16, |r| r.gen_range(0u32..100)),
//!     |v| {
//!         let mut w = v.clone();
//!         w.reverse();
//!         w.reverse();
//!         prop_assert_eq!(&w, v);
//!         Ok(())
//!     },
//! );
//! ```

use crate::rng::{splitmix64, Rng};
use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Outcome of one property evaluation: `Err` carries the failure
/// message produced by the `prop_assert*` macros.
pub type CaseResult = Result<(), String>;

/// Harness configuration. [`Config::default`] reads the environment
/// knobs documented at the module level.
#[derive(Debug, Clone)]
pub struct Config {
    /// Random cases to run (after any pinned cases).
    pub cases: u32,
    /// Base seed from which per-case seeds are derived.
    pub seed: u64,
    /// If set, run exactly one case generated from this seed.
    pub replay: Option<u64>,
}

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let parsed = if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("cannot parse {name}={raw} as an integer"),
    }
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: env_u64("M4PS_PROP_CASES").map_or(128, |v| v as u32),
            seed: env_u64("M4PS_PROP_SEED").unwrap_or(0x6d34_7073_5f74_6b21), // "m4ps_tk!"
            replay: env_u64("M4PS_PROP_REPLAY"),
        }
    }
}

impl Config {
    /// Default configuration with `cases` random cases (environment
    /// overrides still apply for seed/replay; `M4PS_PROP_CASES` wins
    /// over this value so one knob controls the whole suite).
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        let mut cfg = Config::default();
        if env_u64("M4PS_PROP_CASES").is_none() {
            cfg.cases = cases;
        }
        cfg
    }
}

/// Seed for case `index` under base seed `base`: decorrelated via
/// SplitMix64 so neighbouring cases share no structure.
#[must_use]
pub fn case_seed(base: u64, index: u32) -> u64 {
    let mut s = base ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(u64::from(index) + 1);
    splitmix64(&mut s)
}

/// Runs `property` over `cfg.cases` generated inputs.
///
/// # Panics
///
/// Panics on the first failing case with the case's seed, its debug
/// representation, and a replay command.
pub fn check<T, G, P>(name: &str, cfg: &Config, generator: G, property: P)
where
    T: Debug,
    G: Fn(&mut Rng) -> T,
    P: Fn(&T) -> CaseResult,
{
    check_pinned(name, cfg, Vec::new(), generator, property);
}

/// Like [`check`], but runs the `pinned` known-regression inputs first
/// (always, regardless of case count or replay mode). Pin any input
/// that ever failed so it is re-checked on every run, forever.
///
/// # Panics
///
/// Panics on the first failing case (pinned or generated).
pub fn check_pinned<T, G, P>(name: &str, cfg: &Config, pinned: Vec<T>, generator: G, property: P)
where
    T: Debug,
    G: Fn(&mut Rng) -> T,
    P: Fn(&T) -> CaseResult,
{
    for (i, input) in pinned.iter().enumerate() {
        run_case(name, &format!("pinned case #{i}"), input, &property);
    }
    if let Some(seed) = cfg.replay {
        let input = generator(&mut Rng::new(seed));
        run_case(
            name,
            &format!("replay of seed {seed:#018x}"),
            &input,
            &property,
        );
        return;
    }
    for i in 0..cfg.cases {
        let seed = case_seed(cfg.seed, i);
        let input = generator(&mut Rng::new(seed));
        run_case(
            name,
            &format!(
                "case {i}/{} (replay with M4PS_PROP_REPLAY={seed:#018x})",
                cfg.cases
            ),
            &input,
            &property,
        );
    }
}

fn run_case<T: Debug>(name: &str, ctx: &str, input: &T, property: &impl Fn(&T) -> CaseResult) {
    let outcome = catch_unwind(AssertUnwindSafe(|| property(input)));
    let failure = match outcome {
        Ok(Ok(())) => return,
        Ok(Err(msg)) => msg,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic payload>");
            format!("panicked: {msg}")
        }
    };
    panic!("property '{name}' failed on {ctx}\n  input: {input:?}\n  {failure}");
}

/// Asserts a condition inside a property, returning a located failure
/// message instead of panicking (so the harness can attach the input
/// and replay seed).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{}): {}",
                stringify!($cond),
                file!(),
                line!(),
                format!($($fmt)+)
            ));
        }
    };
}

/// Asserts equality inside a property; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "assertion `left == right` failed ({}:{})\n    left: {:?}\n   right: {:?}",
                file!(),
                line!(),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "assertion `left == right` failed ({}:{}): {}\n    left: {:?}\n   right: {:?}",
                file!(),
                line!(),
                format!($($fmt)+),
                l,
                r
            ));
        }
    }};
}

/// Asserts inequality inside a property; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!(
                "assertion `left != right` failed ({}:{})\n    both: {:?}",
                file!(),
                line!(),
                l
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!(
                "assertion `left != right` failed ({}:{}): {}\n    both: {:?}",
                file!(),
                line!(),
                format!($($fmt)+),
                l
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let cfg = Config {
            cases: 50,
            replay: None,
            ..Config::default()
        };
        let count = std::cell::Cell::new(0u32);
        check(
            "sum is commutative",
            &cfg,
            |rng| (rng.gen_range(0u32..1000), rng.gen_range(0u32..1000)),
            |&(a, b)| {
                count.set(count.get() + 1);
                prop_assert_eq!(a + b, b + a);
                Ok(())
            },
        );
        assert_eq!(count.get(), 50);
    }

    #[test]
    fn failing_property_reports_seed_and_input() {
        let cfg = Config {
            cases: 64,
            replay: None,
            ..Config::default()
        };
        let result = catch_unwind(AssertUnwindSafe(|| {
            check(
                "all values below 10 (false)",
                &cfg,
                |rng| rng.gen_range(0u32..100),
                |&v| {
                    prop_assert!(v < 10, "v = {v}");
                    Ok(())
                },
            );
        }));
        let msg = *result
            .expect_err("property must fail")
            .downcast::<String>()
            .unwrap();
        assert!(msg.contains("M4PS_PROP_REPLAY="), "{msg}");
        assert!(msg.contains("input:"), "{msg}");
    }

    #[test]
    fn replay_reproduces_the_reported_case() {
        // Find a failing seed, then replay it and check the same input
        // comes back.
        let base = Config::default();
        let mut failing_input = None;
        for i in 0..1000 {
            let seed = case_seed(base.seed, i);
            let v = Rng::new(seed).gen_range(0u32..100);
            if v >= 90 {
                failing_input = Some((seed, v));
                break;
            }
        }
        let (seed, v) = failing_input.expect("some case must exceed 90");
        let cfg = Config {
            replay: Some(seed),
            ..Config::default()
        };
        let seen = std::cell::Cell::new(0u32);
        let result = catch_unwind(AssertUnwindSafe(|| {
            check(
                "replayed case",
                &cfg,
                |rng| rng.gen_range(0u32..100),
                |&x| {
                    seen.set(x);
                    prop_assert!(x < 90);
                    Ok(())
                },
            );
        }));
        assert!(result.is_err());
        assert_eq!(seen.get(), v);
    }

    #[test]
    fn pinned_cases_run_before_generated_ones() {
        let cfg = Config {
            cases: 0,
            replay: None,
            ..Config::default()
        };
        let result = catch_unwind(AssertUnwindSafe(|| {
            check_pinned(
                "pinned regression fails",
                &cfg,
                vec![99u32],
                |rng| rng.gen_range(0u32..10),
                |&v| {
                    prop_assert!(v < 50);
                    Ok(())
                },
            );
        }));
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("pinned case #0"), "{msg}");
        assert!(msg.contains("99"), "{msg}");
    }

    #[test]
    #[allow(clippy::unnecessary_literal_unwrap)] // the unwrap-on-None panic is the fixture
    fn panics_inside_properties_are_reported_with_input() {
        let cfg = Config {
            cases: 1,
            replay: None,
            ..Config::default()
        };
        let result = catch_unwind(AssertUnwindSafe(|| {
            check(
                "unwraps can fail",
                &cfg,
                |rng| rng.gen_range(0u32..10),
                |_| {
                    let none: Option<u32> = None;
                    let _ = none.unwrap();
                    Ok(())
                },
            );
        }));
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("panicked"), "{msg}");
    }

    #[test]
    fn case_seeds_are_decorrelated() {
        let a = case_seed(1, 0);
        let b = case_seed(1, 1);
        let c = case_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
