//! Deterministic, seedable PRNG: xoshiro256++ seeded through SplitMix64.
//!
//! This is the only source of randomness in the workspace. It is *not*
//! cryptographic; it is fast, has 256 bits of state, passes BigCrush,
//! and — the property the repo actually depends on — produces the same
//! sequence for the same seed on every platform and toolchain.
//!
//! Integer ranges are sampled with Lemire's widening-multiply method
//! (bias below `width / 2^64`, irrelevant at test scale and free of
//! data-dependent branches); floats use the standard 53-bit mantissa
//! construction.

use std::ops::{Range, RangeInclusive};

/// One step of SplitMix64 — used to expand a 64-bit seed into the
/// 256-bit xoshiro state and to derive per-case seeds in [`crate::prop`].
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// xoshiro256++ generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Builds a generator from a 64-bit seed. Any seed is fine,
    /// including 0 (SplitMix64 expansion never yields the all-zero
    /// state).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next raw 32-bit output (upper half of the 64-bit stream).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform boolean.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() >> 63 == 1
    }

    /// A uniform sample from `range` (half-open or inclusive integer
    /// ranges, or a half-open `f64` range).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Fills `buf` with uniform bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// An independent child generator (seeded from this stream), for
    /// splitting randomness between sub-tasks without correlation.
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }

    /// A uniformly chosen element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.gen_range(0..items.len())]
    }

    /// A vector with a length drawn from `len`, each element produced
    /// by `f`. The generator combinator the property tests build on.
    pub fn vec<T>(&mut self, len: Range<usize>, mut f: impl FnMut(&mut Rng) -> T) -> Vec<T> {
        let n = self.gen_range(len);
        (0..n).map(|_| f(self)).collect()
    }

    /// A byte vector with a length drawn from `len`.
    pub fn bytes(&mut self, len: Range<usize>) -> Vec<u8> {
        let n = self.gen_range(len);
        let mut buf = vec![0u8; n];
        self.fill_bytes(&mut buf);
        buf
    }
}

/// A range a [`Rng`] can sample uniformly. Implemented for `Range` and
/// `RangeInclusive` over the primitive integers and for `Range<f64>`.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

/// Uniform integer in `[0, width)` via widening multiply.
fn below(rng: &mut Rng, width: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(width)) >> 64) as u64
}

macro_rules! impl_unsigned_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range");
                let width = u64::from(self.end - self.start);
                self.start + below(rng, width) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let width = u64::from(hi - lo);
                if width == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + below(rng, width + 1) as $t
            }
        }
    )*};
}

impl_unsigned_range!(u8, u16, u32);

impl SampleRange for Range<u64> {
    type Output = u64;
    fn sample(self, rng: &mut Rng) -> u64 {
        assert!(self.start < self.end, "empty range");
        self.start + below(rng, self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<u64> {
    type Output = u64;
    fn sample(self, rng: &mut Rng) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        let width = hi - lo;
        if width == u64::MAX {
            return rng.next_u64();
        }
        lo + below(rng, width + 1)
    }
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample(self, rng: &mut Rng) -> usize {
        assert!(self.start < self.end, "empty range");
        self.start + below(rng, (self.end - self.start) as u64) as usize
    }
}

impl SampleRange for RangeInclusive<usize> {
    type Output = usize;
    fn sample(self, rng: &mut Rng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + below(rng, (hi - lo) as u64 + 1) as usize
    }
}

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range");
                let width = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                ((self.start as i64).wrapping_add(below(rng, width) as i64)) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let width = (hi as i64).wrapping_sub(lo as i64) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                ((lo as i64).wrapping_add(below(rng, width + 1) as i64)) as $t
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(0xdead_beef);
        let mut b = Rng::new(0xdead_beef);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn reference_vector_xoshiro256pp_from_splitmix_seed_zero() {
        // Pinned first outputs for seed 0: any change to the seeding or
        // the generator breaks every golden value in the repo, so catch
        // it here first.
        let mut r = Rng::new(0);
        assert_eq!(r.next_u64(), 0x53175d61490b23df);
        assert_eq!(r.next_u64(), 0x61da6f3dc380d507);
        assert_eq!(r.next_u64(), 0x5c0fdf91ec9a7bfc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = r.gen_range(3usize..=3);
            assert_eq!(u, 3);
        }
    }

    #[test]
    fn full_width_inclusive_ranges_do_not_overflow() {
        let mut r = Rng::new(9);
        let _ = r.gen_range(0u64..=u64::MAX);
        let _ = r.gen_range(i64::MIN..=i64::MAX);
        let _ = r.gen_range(0u32..=u32::MAX);
    }

    #[test]
    fn range_sampling_covers_small_domains() {
        let mut r = Rng::new(11);
        let mut seen = [false; 8];
        for _ in 0..200 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn fill_bytes_is_deterministic_and_nonzero() {
        let mut a = [0u8; 13];
        let mut b = [0u8; 13];
        Rng::new(3).fill_bytes(&mut a);
        Rng::new(3).fill_bytes(&mut b);
        assert_eq!(a, b);
        assert!(a.iter().any(|&x| x != 0));
    }

    #[test]
    fn vec_combinator_respects_length_range() {
        let mut r = Rng::new(5);
        for _ in 0..100 {
            let v = r.vec(2..6, |r| r.gen_range(0u32..10));
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn fork_decorrelates() {
        let mut r = Rng::new(17);
        let mut a = r.fork();
        let mut b = r.fork();
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
