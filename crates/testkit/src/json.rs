//! A tiny JSON value model, serializer and parser — just enough for the
//! bench runner to emit `BENCH_*.json` (and the regression comparator to
//! read it back) without a registry dependency.
//!
//! Output is deterministic: object keys keep insertion order, floats
//! are printed with enough digits to round-trip, integers without a
//! fractional part.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number (NaN/inf serialize as `null`, like
    /// `JSON.stringify`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for strings.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for objects.
    #[must_use]
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Parses a JSON document (the subset this module emits: no
    /// exponent-less oddities are rejected — standard JSON numbers,
    /// strings with `\uXXXX` escapes, arrays, objects, literals).
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax error
    /// or trailing garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The items, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with 2-space indentation and a trailing newline.
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.bytes.get(self.pos) {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => {
                self.expect_literal("null")?;
                Ok(Json::Null)
            }
            Some(b't') => {
                self.expect_literal("true")?;
                Ok(Json::Bool(true))
            }
            Some(b'f') => {
                self.expect_literal("false")?;
                Ok(Json::Bool(false))
            }
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Json::Arr(items));
            }
            if !self.eat(b',') {
                return Err(self.err("expected ',' or ']'"));
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.pos += 1; // '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b'"') {
                return Err(self.err("expected object key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.err("expected ':'"));
            }
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Json::Obj(fields));
            }
            if !self.eat(b',') {
                return Err(self.err("expected ',' or '}'"));
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.pos += 1; // '"'
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogates are rejected rather than paired;
                            // nothing this repo emits uses them.
                            let c =
                                char::from_u32(hex).ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x20 => return Err(self.err("control char in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so this
                    // char boundary arithmetic is safe).
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|&b| b & 0xc0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        self.eat(b'-');
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.eat(b'.') {
            while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if self.eat(b'e') || self.eat(b'E') {
            let _ = self.eat(b'+') || self.eat(b'-');
            while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
        return;
    }
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // Shortest representation that round-trips (Rust's default
        // float Display is exactly that).
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialize() {
        assert_eq!(Json::Null.pretty(), "null\n");
        assert_eq!(Json::Bool(true).pretty(), "true\n");
        assert_eq!(Json::Num(3.0).pretty(), "3\n");
        assert_eq!(Json::Num(3.25).pretty(), "3.25\n");
        assert_eq!(Json::Num(f64::NAN).pretty(), "null\n");
        assert_eq!(Json::str("a\"b\n").pretty(), "\"a\\\"b\\n\"\n");
    }

    #[test]
    fn nested_structure_is_indented() {
        let v = Json::obj(vec![
            ("name", Json::str("dct")),
            ("values", Json::Arr(vec![Json::Num(1.0), Json::Num(2.5)])),
            ("empty", Json::Arr(vec![])),
        ]);
        let expected =
            "{\n  \"name\": \"dct\",\n  \"values\": [\n    1,\n    2.5\n  ],\n  \"empty\": []\n}\n";
        assert_eq!(v.pretty(), expected);
    }

    #[test]
    fn control_chars_are_escaped() {
        assert_eq!(Json::str("\u{1}").pretty(), "\"\\u0001\"\n");
    }

    #[test]
    fn parse_round_trips_what_pretty_emits() {
        let v = Json::obj(vec![
            ("schema", Json::str("m4ps-bench-v1")),
            ("count", Json::Num(3.0)),
            ("median_ns", Json::Num(1234.5)),
            ("flags", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("nested", Json::obj(vec![("k", Json::str("v\n\"q\""))])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        assert_eq!(Json::parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn parse_accessors_navigate() {
        let doc = Json::parse(r#"{"results": [{"name": "dct/forward_8x8", "median_ns": 91.25}]}"#)
            .unwrap();
        let first = &doc.get("results").unwrap().as_arr().unwrap()[0];
        assert_eq!(first.get("name").unwrap().as_str(), Some("dct/forward_8x8"));
        assert_eq!(first.get("median_ns").unwrap().as_f64(), Some(91.25));
        assert!(doc.get("missing").is_none());
        assert!(Json::Null.get("x").is_none());
    }

    #[test]
    fn parse_numbers() {
        assert_eq!(Json::parse("-0.5e2").unwrap(), Json::Num(-50.0));
        assert_eq!(Json::parse("12").unwrap(), Json::Num(12.0));
        assert_eq!(Json::parse("1E3").unwrap(), Json::Num(1000.0));
    }

    #[test]
    fn parse_escapes_and_unicode() {
        assert_eq!(
            Json::parse(r#""a\u00e9\t\\b çav""#).unwrap(),
            Json::str("a\u{e9}\t\\b çav")
        );
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"k\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{1: 2}",
            "nan",
            "[1],",
            "\"bad\\q\"",
            "--1",
        ] {
            assert!(
                Json::parse(bad).is_err(),
                "accepted malformed input {bad:?}"
            );
        }
    }
}
