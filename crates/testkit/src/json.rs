//! A tiny JSON value model and serializer — just enough for the bench
//! runner to emit `BENCH_*.json` without a registry dependency.
//!
//! Output is deterministic: object keys keep insertion order, floats
//! are printed with enough digits to round-trip, integers without a
//! fractional part.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number (NaN/inf serialize as `null`, like
    /// `JSON.stringify`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for strings.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for objects.
    #[must_use]
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serializes with 2-space indentation and a trailing newline.
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
        return;
    }
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // Shortest representation that round-trips (Rust's default
        // float Display is exactly that).
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialize() {
        assert_eq!(Json::Null.pretty(), "null\n");
        assert_eq!(Json::Bool(true).pretty(), "true\n");
        assert_eq!(Json::Num(3.0).pretty(), "3\n");
        assert_eq!(Json::Num(3.25).pretty(), "3.25\n");
        assert_eq!(Json::Num(f64::NAN).pretty(), "null\n");
        assert_eq!(Json::str("a\"b\n").pretty(), "\"a\\\"b\\n\"\n");
    }

    #[test]
    fn nested_structure_is_indented() {
        let v = Json::obj(vec![
            ("name", Json::str("dct")),
            ("values", Json::Arr(vec![Json::Num(1.0), Json::Num(2.5)])),
            ("empty", Json::Arr(vec![])),
        ]);
        let expected = "{\n  \"name\": \"dct\",\n  \"values\": [\n    1,\n    2.5\n  ],\n  \"empty\": []\n}\n";
        assert_eq!(v.pretty(), expected);
    }

    #[test]
    fn control_chars_are_escaped() {
        assert_eq!(Json::str("\u{1}").pretty(), "\"\\u0001\"\n");
    }
}
