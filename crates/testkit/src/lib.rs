//! `m4ps-testkit` — the repo's own measurement instrument.
//!
//! The workspace builds with **zero registry dependencies** so the
//! reproduction compiles and tests offline, on any machine, forever.
//! Everything the tests and benches used to pull from crates.io lives
//! here instead:
//!
//! - [`rng`] — a seedable deterministic PRNG (SplitMix64-seeded
//!   xoshiro256++) with `gen_range`-style helpers; replaces `rand`,
//! - [`prop`] — a minimal property-testing harness (generator
//!   combinators, configurable case count, failing-seed replay,
//!   pinned regression cases); replaces `proptest`,
//! - [`bench`] — a no-harness benchmark runner (warmup, fixed
//!   iteration budget, median/MAD, throughput) that writes
//!   machine-readable `BENCH_*.json`; replaces `criterion`,
//! - [`json`] — the tiny JSON writer the bench runner emits through,
//! - [`alloc`] — a counting global allocator so tests can assert
//!   allocation budgets (e.g. zero-allocation steady-state encode).
//!
//! The paper this repo reproduces (McKee, Fang & Valero, ISPASS 2003)
//! is a *measurement* paper; owning the instrument end to end keeps
//! every number deterministic and reproducible from a clean checkout.
//!
//! # Examples
//!
//! ```
//! use m4ps_testkit::rng::Rng;
//!
//! let mut rng = Rng::new(42);
//! let a = rng.gen_range(0u64..100);
//! assert!(a < 100);
//! let again = Rng::new(42).gen_range(0u64..100);
//! assert_eq!(a, again); // fully deterministic
//! ```

pub mod alloc;
pub mod bench;
pub mod json;
pub mod prop;
pub mod rng;

pub use bench::{black_box, BenchOptions, BenchRunner};
pub use prop::{check, check_pinned, CaseResult, Config};
pub use rng::Rng;
