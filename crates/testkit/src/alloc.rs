//! A counting global allocator for allocation-budget tests.
//!
//! The slice-encode hot path is supposed to reach a zero-allocation
//! steady state (scratch arenas are recycled across VOPs); this shim
//! makes that claim testable. Install it as the test binary's
//! `#[global_allocator]`, snapshot [`CountingAlloc::allocations`]
//! around the region under test, and assert on the delta.
//!
//! Only allocation *count* is tracked, not bytes: the steady-state
//! claim is "no per-macroblock `malloc` calls", and a count is immune
//! to allocator size-class rounding.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Global allocator that forwards to [`System`] and counts calls.
pub struct CountingAlloc {
    allocations: AtomicU64,
}

impl CountingAlloc {
    /// A fresh counter; `const` so it can initialize a `static`.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            allocations: AtomicU64::new(0),
        }
    }

    /// Total allocation calls (alloc + realloc) since process start.
    ///
    /// Frees are not counted: a free has no allocation cost in the
    /// model under test, and counting it would double-charge churn.
    pub fn allocations(&self) -> u64 {
        self.allocations.load(Ordering::Relaxed)
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: delegates every allocation verbatim to `System`; the counter
// is a relaxed atomic side effect that cannot affect layout or aliasing.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_go_up_when_allocating() {
        // Not installed as the global allocator here — exercise the
        // trait methods directly against a real layout.
        let a = CountingAlloc::new();
        let layout = Layout::from_size_align(64, 8).unwrap();
        assert_eq!(a.allocations(), 0);
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            a.dealloc(p, layout);
        }
        assert_eq!(a.allocations(), 1);
    }
}
