//! Bench-regression gate: diff a fresh `BENCH_smoke.json` against the
//! committed baseline and fail when any benchmark's median regressed by
//! more than the threshold.
//!
//! ```text
//! bench_compare <baseline.json> <fresh.json> [--max-regress <pct>]
//! ```
//!
//! Exit status 0 when every shared benchmark is within budget, 1 on
//! regression, 2 on unreadable/invalid input. Benchmarks present in only
//! one file are reported but never fail the gate, so adding or retiring
//! a benchmark doesn't require a lockstep baseline update.

use m4ps_testkit::json::Json;
use std::process::ExitCode;

const DEFAULT_MAX_REGRESS_PCT: f64 = 25.0;

/// `(name, median_ns)` for every entry in a bench report.
fn load_medians(path: &str) -> Result<Vec<(String, f64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let schema = doc.get("schema").and_then(Json::as_str);
    if schema != Some("m4ps-bench-v1") {
        return Err(format!("{path}: unexpected schema {schema:?}"));
    }
    let results = doc
        .get("results")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{path}: missing results array"))?;
    let mut out = Vec::with_capacity(results.len());
    for r in results {
        let name = r
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{path}: result without a name"))?;
        let median = r
            .get("median_ns")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("{path}: {name}: missing median_ns"))?;
        out.push((name.to_string(), median));
    }
    Ok(out)
}

fn run() -> Result<bool, String> {
    let mut args = std::env::args().skip(1);
    let baseline_path = args
        .next()
        .ok_or("usage: bench_compare <baseline.json> <fresh.json> [--max-regress <pct>]")?;
    let fresh_path = args.next().ok_or("missing <fresh.json> argument")?;
    let mut max_regress_pct = DEFAULT_MAX_REGRESS_PCT;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--max-regress" => {
                max_regress_pct = args
                    .next()
                    .ok_or("--max-regress needs a value")?
                    .parse()
                    .map_err(|e| format!("--max-regress: {e}"))?;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }

    let baseline = load_medians(&baseline_path)?;
    let fresh = load_medians(&fresh_path)?;
    let limit = 1.0 + max_regress_pct / 100.0;

    println!("comparing {fresh_path} against {baseline_path} (fail above +{max_regress_pct}%)");
    let mut regressions = 0usize;
    let mut compared = 0usize;
    for (name, fresh_median) in &fresh {
        let Some((_, base_median)) = baseline.iter().find(|(n, _)| n == name) else {
            println!("  new       {name}: {fresh_median:.0} ns (no baseline, not gated)");
            continue;
        };
        compared += 1;
        let delta_pct = if *base_median > 0.0 {
            (fresh_median / base_median - 1.0) * 100.0
        } else {
            0.0
        };
        if *base_median > 0.0 && fresh_median / base_median > limit {
            regressions += 1;
            println!(
                "  REGRESSED {name}: {base_median:.0} -> {fresh_median:.0} ns ({delta_pct:+.1}%)"
            );
        } else {
            println!(
                "  ok        {name}: {base_median:.0} -> {fresh_median:.0} ns ({delta_pct:+.1}%)"
            );
        }
    }
    for (name, _) in &baseline {
        if !fresh.iter().any(|(n, _)| n == name) {
            println!("  retired   {name}: present in baseline only");
        }
    }
    if compared == 0 {
        return Err("no benchmark names in common; wrong files?".to_string());
    }
    if regressions > 0 {
        println!("{regressions} of {compared} benchmarks regressed beyond +{max_regress_pct}%");
    } else {
        println!("all {compared} shared benchmarks within budget");
    }
    Ok(regressions == 0)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("bench_compare: {msg}");
            ExitCode::from(2)
        }
    }
}
