//! Bench-regression gate: diff a fresh `BENCH_smoke.json` against the
//! committed baseline and fail when any benchmark's median regressed by
//! more than the threshold.
//!
//! ```text
//! bench_compare <baseline.json> <fresh.json> [--max-regress <pct>] [--min-scaling <x>]
//!               [--max-obs-overhead <pct>] [--max-rec-overhead <pct>]
//!               [--max-decode-overhead <pct>] [--phases <file>]
//! bench_compare --scaling <fresh.json> [--min-scaling <x>] [--max-obs-overhead <pct>]
//!               [--max-rec-overhead <pct>] [--max-decode-overhead <pct>] [--phases <file>]
//! ```
//!
//! Exit status 0 when every shared benchmark is within budget, 1 on
//! regression, 2 on unreadable/invalid input. Benchmarks present in only
//! one file are reported but never fail the gate, so adding or retiring
//! a benchmark doesn't require a lockstep baseline update.
//!
//! When the fresh file contains the `parallel/encode_frame/threads=N`
//! series, the thread-scaling speedups are reported and gated too: the
//! threads=4 speedup over threads=1 must clear `--min-scaling`. The
//! default floor adapts to the machine running the gate (a single-core
//! CI runner cannot show parallel speedup, only bounded overhead):
//! ≥4 cores → 2.0×, 2–3 cores → 1.0×, 1 core → 0.8×. `--scaling` runs
//! the scaling report alone against one file, no baseline needed. The
//! `parallel/decode_frame/threads=N` series is gated the same way, and
//! its `threads=seq` entry (the legacy no-pool decoder) additionally
//! bounds the slice-parallel construction's 1-worker overhead
//! (`--max-decode-overhead`, default +2%).
//!
//! When the fresh file contains the `parallel/encode_frame/obs={off,on}`
//! pair, the installed-profiler overhead is gated too (default ceiling
//! +8%, `--max-obs-overhead`), and the `parallel/encode_frame/rec={off,on}`
//! pair likewise gates the installed flight-recorder overhead (default
//! ceiling +8%, `--max-rec-overhead`). `--phases <file>` additionally
//! prints the top-3 stall-cycle phases from a `trace_smoke` phases JSONL
//! next to the gate report.

use m4ps_testkit::json::Json;
use std::process::ExitCode;

const DEFAULT_MAX_REGRESS_PCT: f64 = 25.0;

/// The benchmark series the encode scaling gate reads.
const SCALING_SERIES: &str = "parallel/encode_frame/threads=";

/// The benchmark series the decode scaling gate reads; the extra
/// `threads=seq` entry in the same series is the legacy no-pool
/// decoder, gated against `threads=1` by the decode-overhead check.
const DECODE_SCALING_SERIES: &str = "parallel/decode_frame/threads=";

/// The benchmark pair the profiler-overhead gate reads.
const OBS_SERIES: &str = "parallel/encode_frame/obs=";

/// The benchmark pair the flight-recorder-overhead gate reads.
const REC_SERIES: &str = "parallel/encode_frame/rec=";

/// Ceiling for the installed-profiler overhead (obs=on vs obs=off).
/// The wavefront scheduler attaches the session and records a
/// queue-wait sample per macroblock-row task (not per coarse slice
/// job), so the instrumented encode legitimately pays a little more
/// than the old 5% budget; 8% still catches an accidentally hot
/// span while clearing single-digit task-grain costs.
const DEFAULT_MAX_OBS_OVERHEAD_PCT: f64 = 8.0;

/// Ceiling for the installed flight-recorder overhead (rec=on vs
/// rec=off, profiler session held constant). Recording a coarse phase
/// event is one timestamp plus a 40-byte ring append under a
/// per-thread lock — single digits even on a starved runner; 8%
/// catches an accidentally hot (per-macroblock) record site.
const DEFAULT_MAX_REC_OVERHEAD_PCT: f64 = 8.0;

/// Ceiling for the slice-parallel decode construction on a single
/// worker vs the legacy sequential decoder (threads=1 vs threads=seq).
/// The delta is the resync pre-scan (a byte-aligned marker sweep over
/// the VOP payload), the model forks/absorbs and one pool round trip —
/// all boundable work that must stay in the noise.
const DEFAULT_MAX_DECODE_OVERHEAD_PCT: f64 = 2.0;

/// `(name, median_ns)` rows plus the report's `meta.kernel_tier` tag
/// (reports from before the tag carry `None`).
type MediansAndTier = (Vec<(String, f64)>, Option<String>);

fn load_medians(path: &str) -> Result<MediansAndTier, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let schema = doc.get("schema").and_then(Json::as_str);
    if schema != Some("m4ps-bench-v1") {
        return Err(format!("{path}: unexpected schema {schema:?}"));
    }
    let kernel_tier = doc
        .get("meta")
        .and_then(|m| m.get("kernel_tier"))
        .and_then(Json::as_str)
        .map(str::to_string);
    let results = doc
        .get("results")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{path}: missing results array"))?;
    let mut out = Vec::with_capacity(results.len());
    for r in results {
        let name = r
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{path}: result without a name"))?;
        let median = r
            .get("median_ns")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("{path}: {name}: missing median_ns"))?;
        out.push((name.to_string(), median));
    }
    Ok((out, kernel_tier))
}

/// Machine-aware default for the threads=4 speedup floor. Parallel
/// speedup needs cores; on starved runners the gate only bounds the
/// overhead of scheduling slices onto a pool. With the persistent
/// work-stealing pool and wavefront row chains, a genuinely 4-wide
/// machine must clear 2x — anything less means the pool is parking
/// workers or the row grain reintroduced a serial section.
fn default_min_scaling() -> f64 {
    match std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get) {
        n if n >= 4 => 2.0,
        n if n >= 2 => 1.0,
        _ => 0.8,
    }
}

/// Prints the thread-scaling speedup table of `series` from `medians`
/// and gates the threads=4 point. Returns `Ok(None)` when the series is
/// absent (the file simply doesn't carry the parallel benches),
/// `Ok(Some(pass))` otherwise.
fn check_series_scaling(
    medians: &[(String, f64)],
    series: &str,
    min_scaling: f64,
) -> Result<Option<bool>, String> {
    let median_at = |threads: u32| {
        let name = format!("{series}{threads}");
        medians
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, m)| m)
            .filter(|&m| m > 0.0)
    };
    let Some(base) = median_at(1) else {
        return Ok(None);
    };
    println!(
        "thread scaling ({series}N, speedup over threads=1, floor {min_scaling:.2}x at threads=4)"
    );
    println!("  threads=1: {base:.0} ns  1.00x");
    let mut gated = None;
    for threads in [2u32, 4] {
        let Some(m) = median_at(threads) else {
            return Err(format!("{series}{threads} missing from fresh results"));
        };
        let speedup = base / m;
        println!("  threads={threads}: {m:.0} ns  {speedup:.2}x");
        if threads == 4 {
            gated = Some(speedup);
        }
    }
    let speedup4 = gated.expect("loop covers threads=4");
    if speedup4 < min_scaling {
        println!(
            "SCALING REGRESSED: threads=4 speedup {speedup4:.2}x below the {min_scaling:.2}x floor"
        );
        Ok(Some(false))
    } else {
        println!("scaling ok: threads=4 speedup {speedup4:.2}x >= {min_scaling:.2}x");
        Ok(Some(true))
    }
}

/// Gates the encode thread-scaling series.
fn check_scaling(medians: &[(String, f64)], min_scaling: f64) -> Result<Option<bool>, String> {
    check_series_scaling(medians, SCALING_SERIES, min_scaling)
}

/// Gates the decode thread-scaling series (same machine-aware floor as
/// encode: the slice jobs run on the same persistent pool).
fn check_decode_scaling(
    medians: &[(String, f64)],
    min_scaling: f64,
) -> Result<Option<bool>, String> {
    check_series_scaling(medians, DECODE_SCALING_SERIES, min_scaling)
}

/// Gates the cost of the slice-parallel decode construction itself:
/// `parallel/decode_frame/threads=1` may exceed `threads=seq` (the
/// legacy no-pool decoder) by at most `max_pct` percent. Returns
/// `Ok(None)` when either entry is absent.
fn check_decode_overhead(medians: &[(String, f64)], max_pct: f64) -> Result<Option<bool>, String> {
    let median_of = |label: &str| {
        let name = format!("{DECODE_SCALING_SERIES}{label}");
        medians
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, m)| m)
            .filter(|&m| m > 0.0)
    };
    let (Some(seq), Some(one)) = (median_of("seq"), median_of("1")) else {
        return Ok(None);
    };
    let overhead_pct = (one / seq - 1.0) * 100.0;
    println!(
        "decode parallel-construction overhead (threads=1 vs seq): \
         {seq:.0} -> {one:.0} ns ({overhead_pct:+.1}%, ceiling +{max_pct}%)"
    );
    if overhead_pct > max_pct {
        println!(
            "OVERHEAD REGRESSED: slice-parallel decode on one worker costs \
             {overhead_pct:+.1}% over the sequential decoder (> +{max_pct}%)"
        );
        Ok(Some(false))
    } else {
        Ok(Some(true))
    }
}

/// Gates an on-vs-off overhead pair: the `{series}on` median may exceed
/// the `{series}off` median by at most `max_pct` percent. Returns
/// `Ok(None)` when the pair is absent.
fn check_onoff_overhead(
    medians: &[(String, f64)],
    series: &str,
    what: &str,
    max_pct: f64,
) -> Result<Option<bool>, String> {
    let median_of = |label: &str| {
        let name = format!("{series}{label}");
        medians
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, m)| m)
            .filter(|&m| m > 0.0)
    };
    let Some(off) = median_of("off") else {
        return Ok(None);
    };
    let on = median_of("on").ok_or(format!("{series}on missing from fresh results"))?;
    let overhead_pct = (on / off - 1.0) * 100.0;
    println!(
        "{what} overhead ({series}on vs off): {off:.0} -> {on:.0} ns ({overhead_pct:+.1}%, ceiling +{max_pct}%)"
    );
    if overhead_pct > max_pct {
        println!("OVERHEAD REGRESSED: installed {what} costs {overhead_pct:+.1}% (> +{max_pct}%)");
        Ok(Some(false))
    } else {
        Ok(Some(true))
    }
}

/// Gates the span-profiler overhead (obs=on vs obs=off).
fn check_obs_overhead(medians: &[(String, f64)], max_pct: f64) -> Result<Option<bool>, String> {
    check_onoff_overhead(medians, OBS_SERIES, "profiler", max_pct)
}

/// Gates the flight-recorder overhead (rec=on vs rec=off).
fn check_rec_overhead(medians: &[(String, f64)], max_pct: f64) -> Result<Option<bool>, String> {
    check_onoff_overhead(medians, REC_SERIES, "flight recorder", max_pct)
}

/// Prints the top-3 stall-cycle phases from a phases JSONL file (one
/// object per line with `phase` and `stall_cycles` fields, as written
/// by `trace_smoke`). Purely informational — the per-phase profile has
/// no baseline to gate against; it gives the scaling gate context.
fn print_top_stall_phases(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut phases: Vec<(String, f64, f64)> = Vec::new();
    let mut total_stall = 0.0;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let doc = Json::parse(line).map_err(|e| format!("{path}: {e}"))?;
        let name = doc
            .get("phase")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{path}: line without a phase field"))?;
        let stall = doc
            .get("stall_cycles")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("{path}: {name}: missing stall_cycles"))?;
        let wall = doc.get("wall_ns").and_then(Json::as_f64).unwrap_or(0.0);
        total_stall += stall;
        phases.push((name.to_string(), stall, wall));
    }
    if phases.is_empty() {
        return Err(format!("{path}: no phase records"));
    }
    phases.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    println!("top stall phases ({path}):");
    for (name, stall, _) in phases.iter().take(3) {
        let share = if total_stall > 0.0 {
            100.0 * stall / total_stall
        } else {
            0.0
        };
        println!("  {name}: {stall:.0} stall cycles ({share:.1}% of modelled stalls)");
    }
    Ok(())
}

fn run() -> Result<bool, String> {
    let mut args = std::env::args().skip(1);
    let first = args.next().ok_or(
        "usage: bench_compare <baseline.json> <fresh.json> [--max-regress <pct>] [--min-scaling <x>]\n       bench_compare --scaling <fresh.json> [--min-scaling <x>]",
    )?;
    let mut max_regress_pct = DEFAULT_MAX_REGRESS_PCT;
    let mut min_scaling = default_min_scaling();
    let mut max_obs_overhead_pct = DEFAULT_MAX_OBS_OVERHEAD_PCT;
    let mut max_rec_overhead_pct = DEFAULT_MAX_REC_OVERHEAD_PCT;
    let mut max_decode_overhead_pct = DEFAULT_MAX_DECODE_OVERHEAD_PCT;
    let mut phases_path: Option<String> = None;
    let scaling_only = first == "--scaling";
    let (baseline_path, fresh_path) = if scaling_only {
        (None, args.next().ok_or("--scaling needs a <fresh.json>")?)
    } else {
        (
            Some(first),
            args.next().ok_or("missing <fresh.json> argument")?,
        )
    };
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--max-regress" => {
                max_regress_pct = args
                    .next()
                    .ok_or("--max-regress needs a value")?
                    .parse()
                    .map_err(|e| format!("--max-regress: {e}"))?;
            }
            "--min-scaling" => {
                min_scaling = args
                    .next()
                    .ok_or("--min-scaling needs a value")?
                    .parse()
                    .map_err(|e| format!("--min-scaling: {e}"))?;
            }
            "--max-obs-overhead" => {
                max_obs_overhead_pct = args
                    .next()
                    .ok_or("--max-obs-overhead needs a value")?
                    .parse()
                    .map_err(|e| format!("--max-obs-overhead: {e}"))?;
            }
            "--max-rec-overhead" => {
                max_rec_overhead_pct = args
                    .next()
                    .ok_or("--max-rec-overhead needs a value")?
                    .parse()
                    .map_err(|e| format!("--max-rec-overhead: {e}"))?;
            }
            "--max-decode-overhead" => {
                max_decode_overhead_pct = args
                    .next()
                    .ok_or("--max-decode-overhead needs a value")?
                    .parse()
                    .map_err(|e| format!("--max-decode-overhead: {e}"))?;
            }
            "--phases" => {
                phases_path = Some(args.next().ok_or("--phases needs a <file>")?);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }

    let (fresh, fresh_tier) = load_medians(&fresh_path)?;
    if scaling_only {
        let pass = match check_scaling(&fresh, min_scaling)? {
            Some(pass) => pass,
            None => {
                return Err(format!(
                    "{fresh_path}: no {SCALING_SERIES}N entries to gate"
                ))
            }
        };
        let decode_ok = check_decode_scaling(&fresh, min_scaling)?.unwrap_or(true);
        let decode_ovh_ok = check_decode_overhead(&fresh, max_decode_overhead_pct)?.unwrap_or(true);
        let obs_ok = check_obs_overhead(&fresh, max_obs_overhead_pct)?.unwrap_or(true);
        let rec_ok = check_rec_overhead(&fresh, max_rec_overhead_pct)?.unwrap_or(true);
        if let Some(phases) = &phases_path {
            print_top_stall_phases(phases)?;
        }
        return Ok(pass && decode_ok && decode_ovh_ok && obs_ok && rec_ok);
    }
    let baseline_path = baseline_path.expect("set in non-scaling mode");
    let (baseline, base_tier) = load_medians(&baseline_path)?;
    let limit = 1.0 + max_regress_pct / 100.0;

    // Medians from different dispatch tiers (or machines whose best
    // tier differs) measure different code: comparing them would gate
    // noise against noise. Warn loudly and skip the per-bench diff, but
    // still run the self-contained checks (scaling, obs overhead) on
    // the fresh file. Reports without the tag predate it and pass.
    if let (Some(b), Some(f)) = (&base_tier, &fresh_tier) {
        if b != f {
            println!(
                "WARNING: kernel-tier mismatch: baseline ran {b}, fresh ran {f}; \
                 skipping the per-benchmark comparison (re-baseline on this \
                 machine or force M4PS_KERNELS={b})"
            );
            let scaling_ok = check_scaling(&fresh, min_scaling)?.unwrap_or(true);
            let decode_ok = check_decode_scaling(&fresh, min_scaling)?.unwrap_or(true);
            let decode_ovh_ok =
                check_decode_overhead(&fresh, max_decode_overhead_pct)?.unwrap_or(true);
            let obs_ok = check_obs_overhead(&fresh, max_obs_overhead_pct)?.unwrap_or(true);
            let rec_ok = check_rec_overhead(&fresh, max_rec_overhead_pct)?.unwrap_or(true);
            if let Some(phases) = &phases_path {
                print_top_stall_phases(phases)?;
            }
            return Ok(scaling_ok && decode_ok && decode_ovh_ok && obs_ok && rec_ok);
        }
    }

    println!("comparing {fresh_path} against {baseline_path} (fail above +{max_regress_pct}%)");
    if let Some(t) = &fresh_tier {
        println!("  kernel tier: {t} (both reports)");
    }
    let mut regressions = 0usize;
    let mut compared = 0usize;
    for (name, fresh_median) in &fresh {
        let Some((_, base_median)) = baseline.iter().find(|(n, _)| n == name) else {
            println!("  new       {name}: {fresh_median:.0} ns (no baseline, not gated)");
            continue;
        };
        compared += 1;
        let delta_pct = if *base_median > 0.0 {
            (fresh_median / base_median - 1.0) * 100.0
        } else {
            0.0
        };
        if *base_median > 0.0 && fresh_median / base_median > limit {
            regressions += 1;
            println!(
                "  REGRESSED {name}: {base_median:.0} -> {fresh_median:.0} ns ({delta_pct:+.1}%)"
            );
        } else {
            println!(
                "  ok        {name}: {base_median:.0} -> {fresh_median:.0} ns ({delta_pct:+.1}%)"
            );
        }
    }
    for (name, _) in &baseline {
        if !fresh.iter().any(|(n, _)| n == name) {
            println!("  retired   {name}: present in baseline only");
        }
    }
    if compared == 0 {
        return Err("no benchmark names in common; wrong files?".to_string());
    }
    if regressions > 0 {
        println!("{regressions} of {compared} benchmarks regressed beyond +{max_regress_pct}%");
    } else {
        println!("all {compared} shared benchmarks within budget");
    }
    // Gate thread scaling from the fresh run too (when present): a
    // per-bench regression check alone can miss a broken parallel path
    // whose threads=1 and threads=4 medians both drift within budget.
    let scaling_ok = check_scaling(&fresh, min_scaling)?.unwrap_or(true);
    // The decode mirror: same floor, same reasoning — plus the
    // construction-overhead gate (threads=1 vs the legacy sequential
    // decoder), which bounds what slice pre-scan + forks + dispatch may
    // cost a 1-worker decode.
    let decode_ok = check_decode_scaling(&fresh, min_scaling)?.unwrap_or(true);
    let decode_ovh_ok = check_decode_overhead(&fresh, max_decode_overhead_pct)?.unwrap_or(true);
    // Likewise for the profiler-overhead pair: instrumentation that gets
    // more expensive is a regression even if both medians drift within
    // the per-bench budget.
    let obs_ok = check_obs_overhead(&fresh, max_obs_overhead_pct)?.unwrap_or(true);
    // And the recorder pair: an always-on ring append that turns hot is
    // a service regression even when the codec medians stay flat.
    let rec_ok = check_rec_overhead(&fresh, max_rec_overhead_pct)?.unwrap_or(true);
    if let Some(phases) = &phases_path {
        print_top_stall_phases(phases)?;
    }
    Ok(regressions == 0 && scaling_ok && decode_ok && decode_ovh_ok && obs_ok && rec_ok)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("bench_compare: {msg}");
            ExitCode::from(2)
        }
    }
}
