//! Guard: the workspace must stay hermetic.
//!
//! The build environment has no registry access, so *every* dependency
//! in *every* manifest must resolve inside the repository: either a
//! `path = "..."` entry or a `workspace = true` inheritance of one.
//! This test walks all workspace `Cargo.toml`s with a small line-level
//! scanner (no TOML crate — that would itself be a registry dep) and
//! fails the moment a version-only (registry) dependency reappears.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Section headers whose entries declare dependencies.
fn is_dependency_section(header: &str) -> bool {
    header == "workspace.dependencies"
        || header
            .rsplit_once('.')
            .map_or(header, |(_, last)| last)
            .ends_with("dependencies")
}

/// Collects `(manifest, section, name, value)` for every dependency
/// entry that cannot be satisfied from inside the repo.
fn scan_manifest(path: &Path, violations: &mut String) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let mut section = String::new();
    let mut in_dep_table = false;
    let mut lines = text.lines().peekable();
    while let Some(raw) = lines.next() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') && line.ends_with(']') {
            section = line.trim_matches(['[', ']']).trim().to_string();
            // `[dependencies.foo]` long-form tables: treat the whole
            // table as one entry and require a path key inside it.
            in_dep_table = false;
            if let Some((parent, name)) = section.rsplit_once('.') {
                if is_dependency_section(parent) {
                    in_dep_table = true;
                    let mut body = String::new();
                    while let Some(peek) = lines.peek() {
                        if peek.trim_start().starts_with('[') {
                            break;
                        }
                        body.push_str(lines.next().unwrap());
                        body.push('\n');
                    }
                    if !body.contains("path") && !body.contains("workspace = true") {
                        let _ = writeln!(
                            violations,
                            "{}: [{}] `{}` has no `path` or `workspace = true`",
                            path.display(),
                            parent,
                            name
                        );
                    }
                }
            }
            continue;
        }
        if in_dep_table || !is_dependency_section(&section) {
            continue;
        }
        let Some((name, value)) = line.split_once('=') else {
            continue;
        };
        let (name, value) = (name.trim(), value.trim());
        let hermetic = value.contains("path")
            || value.contains("workspace = true")
            || name.ends_with(".workspace") && value == "true";
        if !hermetic {
            let _ = writeln!(
                violations,
                "{}: [{}] `{}` = `{}` is a registry dependency",
                path.display(),
                section,
                name,
                value
            );
        }
    }
}

fn workspace_manifests() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut manifests = vec![root.join("Cargo.toml")];
    for entry in std::fs::read_dir(root.join("crates")).expect("crates/ dir") {
        let dir = entry.expect("crates/ entry").path();
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            manifests.push(manifest);
        }
    }
    assert!(
        manifests.len() >= 8,
        "expected the root + >=7 crate manifests, found {}",
        manifests.len()
    );
    manifests
}

#[test]
fn no_registry_dependencies_anywhere() {
    let mut violations = String::new();
    for manifest in workspace_manifests() {
        scan_manifest(&manifest, &mut violations);
    }
    assert!(
        violations.is_empty(),
        "non-path dependencies found (the build has no registry access):\n{violations}"
    );
}

#[test]
fn no_proptest_regression_files_linger() {
    // Regressions are pinned as named unit tests now (see the
    // `check_pinned` call sites); a reappearing .proptest-regressions
    // file means someone reintroduced proptest.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut stack = vec![root.join("crates"), root.join("tests")];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).expect("readable dir") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                if path.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(path);
            } else if path
                .extension()
                .is_some_and(|e| e == "proptest-regressions")
            {
                panic!("stale proptest regression file: {}", path.display());
            }
        }
    }
}

/// The scanner itself must reject the patterns it exists to catch.
#[test]
fn scanner_catches_registry_shapes() {
    let dir = std::env::temp_dir().join("m4ps-hermetic-selftest");
    std::fs::create_dir_all(&dir).unwrap();
    let manifest = dir.join("Cargo.toml");
    std::fs::write(
        &manifest,
        r#"
[package]
name = "x"

[dependencies]
good = { path = "../good" }
inherited.workspace = true
bad = "1.0"

[dev-dependencies]
worse = { version = "0.5", features = ["std"] }

[dependencies.table-bad]
version = "2"

[dependencies.table-good]
path = "../fine"
"#,
    )
    .unwrap();
    let mut violations = String::new();
    scan_manifest(&manifest, &mut violations);
    std::fs::remove_file(&manifest).ok();
    assert!(violations.contains("`bad`"), "{violations}");
    assert!(violations.contains("`worse`"), "{violations}");
    assert!(violations.contains("`table-bad`"), "{violations}");
    assert!(!violations.contains("good"), "{violations}");
    assert!(!violations.contains("inherited"), "{violations}");
}
