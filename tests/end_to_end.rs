//! Workspace-spanning integration tests: scene generation → encoding →
//! simulated measurement → decoding → composition, across crates.

use m4ps::codec::{EncoderConfig, FrameView, SceneDecoder, SceneEncoder};
use m4ps::core::study::{decode_study, encode_study, prepare_streams, StudyConfig, Workload};
use m4ps::memsim::{AddressSpace, Hierarchy, MachineSpec, MemModel, NullModel};
use m4ps::vidgen::{Resolution, Scene, SceneSpec};

fn tiny(frames: usize, objects: usize, layers: usize) -> Workload {
    Workload {
        resolution: Resolution::QCIF,
        frames,
        objects,
        layers,
        seed: 77,
    }
}

#[test]
fn full_pipeline_under_simulation_matches_null_model_functionally() {
    // The memory model must never change codec outputs: encode the same
    // workload under the full hierarchy and under the null model and
    // compare the bitstreams bit for bit.
    let res = Resolution::QCIF;
    let scene = Scene::new(SceneSpec {
        resolution: res,
        objects: 1,
        seed: 5,
    });
    let config = EncoderConfig::fast_test();

    let run = |hier: bool| -> Vec<Vec<u8>> {
        let mut space = AddressSpace::new();
        let mut enc = SceneEncoder::new(&mut space, res.width, res.height, 1, 1, config).unwrap();
        let mut h = Hierarchy::new(MachineSpec::o2());
        let mut n = NullModel::new();
        for t in 0..4 {
            let f = scene.frame(t);
            let mask = scene.alpha(t, 0).data;
            let view = FrameView {
                width: res.width,
                height: res.height,
                y: &f.y,
                u: &f.u,
                v: &f.v,
            };
            if hier {
                enc.encode_frame(&mut h, &view, &[&mask]).unwrap();
            } else {
                enc.encode_frame(&mut n, &view, &[&mask]).unwrap();
            }
        }
        if hier {
            enc.finish(&mut h).unwrap()
        } else {
            enc.finish(&mut n).unwrap()
        }
    };
    assert_eq!(run(true), run(false));
}

#[test]
fn measured_encode_shows_the_papers_shape_at_small_scale() {
    let cfg = StudyConfig::fast().with_search(m4ps::codec::SearchStrategy::FullSearch, 6);
    let run = encode_study(&MachineSpec::o2(), &tiny(5, 0, 1), &cfg).unwrap();
    let m = &run.metrics;
    // Fallacy 1: not streaming.
    assert!(m.l1_miss_rate < 0.01, "L1 miss rate {}", m.l1_miss_rate);
    assert!(m.l1_line_reuse > 100.0, "reuse {}", m.l1_line_reuse);
    // Fallacy 2: not latency bound.
    assert!(m.dram_time < 0.15, "dram time {}", m.dram_time);
    // Fallacy 3: not bandwidth bound.
    assert!(
        m.bus_utilization(&run.machine) < 0.10,
        "bus {}",
        m.bus_utilization(&run.machine)
    );
}

#[test]
fn bigger_l2_never_increases_l2_misses() {
    let cfg = StudyConfig::fast();
    let w = tiny(4, 0, 1);
    let streams = prepare_streams(&w, &cfg).unwrap();
    let mut last = u64::MAX;
    for machine in [
        MachineSpec::o2(),
        MachineSpec::o2().with_l2_mb(2),
        MachineSpec::o2().with_l2_mb(4),
        MachineSpec::o2().with_l2_mb(8),
    ] {
        let run = decode_study(&machine, &w, &streams).unwrap();
        assert!(
            run.metrics.counters.l2_misses <= last,
            "L2 misses increased at {} MB",
            machine.l2.size_bytes / (1024 * 1024)
        );
        last = run.metrics.counters.l2_misses;
    }
}

#[test]
fn architectural_work_is_machine_independent() {
    // Loads/stores/instructions depend only on the program, never on the
    // cache geometry; misses depend on geometry.
    let cfg = StudyConfig::fast();
    let w = tiny(3, 0, 1);
    let a = encode_study(&MachineSpec::o2(), &w, &cfg).unwrap();
    let b = encode_study(&MachineSpec::onyx2(), &w, &cfg).unwrap();
    assert_eq!(a.metrics.counters.loads, b.metrics.counters.loads);
    assert_eq!(a.metrics.counters.stores, b.metrics.counters.stores);
    assert_eq!(
        a.metrics.counters.compute_ops,
        b.metrics.counters.compute_ops
    );
    assert!(a.metrics.counters.l2_misses >= b.metrics.counters.l2_misses);
}

#[test]
fn image_size_does_not_degrade_encode_miss_rate() {
    // The paper's Fallacy 4 at test scale: QCIF vs CIF (4x the pixels).
    let cfg = StudyConfig::fast();
    let small = encode_study(&MachineSpec::o2(), &tiny(3, 0, 1), &cfg).unwrap();
    let big = encode_study(
        &MachineSpec::o2(),
        &Workload {
            resolution: Resolution::CIF,
            ..tiny(3, 0, 1)
        },
        &cfg,
    )
    .unwrap();
    let growth = big.metrics.l1_miss_rate / small.metrics.l1_miss_rate.max(1e-12);
    assert!(
        growth < 1.5,
        "L1 miss rate grew {growth:.2}x with 4x pixels"
    );
}

#[test]
fn multi_vo_decode_does_not_degrade_vs_single() {
    let cfg = StudyConfig::fast();
    let single = {
        let w = tiny(3, 0, 1);
        let s = prepare_streams(&w, &cfg).unwrap();
        decode_study(&MachineSpec::onyx_vtx(), &w, &s).unwrap()
    };
    let multi = {
        let w = tiny(3, 3, 1);
        let s = prepare_streams(&w, &cfg).unwrap();
        decode_study(&MachineSpec::onyx_vtx(), &w, &s).unwrap()
    };
    // The paper's Fallacy 5: miss rates stay in the same band (they even
    // improve in the paper); allow a modest tolerance at tiny scale.
    let growth = multi.metrics.l1_miss_rate / single.metrics.l1_miss_rate.max(1e-12);
    assert!(growth < 1.6, "multi-VO decode degraded {growth:.2}x");
    assert!(multi.resident_bytes > single.resident_bytes);
}

#[test]
fn layered_scene_roundtrip_under_full_simulation() {
    // 2 VOs x 2 layers with every access simulated end to end.
    let res = Resolution::QCIF;
    let scene = Scene::new(SceneSpec {
        resolution: res,
        objects: 2,
        seed: 31,
    });
    let mut space = AddressSpace::new();
    let mut mem = Hierarchy::new(MachineSpec::onyx_vtx());
    let mut enc = SceneEncoder::new(
        &mut space,
        res.width,
        res.height,
        2,
        2,
        EncoderConfig::fast_test(),
    )
    .unwrap();
    for t in 0..4 {
        let f = scene.frame(t);
        let m0 = scene.alpha(t, 0).data;
        let m1 = scene.alpha(t, 1).data;
        let view = FrameView {
            width: res.width,
            height: res.height,
            y: &f.y,
            u: &f.u,
            v: &f.v,
        };
        enc.encode_frame(&mut mem, &view, &[&m0, &m1]).unwrap();
    }
    let streams = enc.finish(&mut mem).unwrap();
    assert_eq!(streams.len(), 4);

    let mut dspace = AddressSpace::new();
    let mut dec = SceneDecoder::new(&mut dspace, &mut mem, &streams, 2).unwrap();
    let vops = dec.decode_all(&mut mem, &streams).unwrap();
    assert_eq!(vops.len(), 8); // 4 frames x 2 VOs
    let c = mem.counters();
    assert!(c.loads > 1_000_000);
    assert!(c.l1_misses > 0);
    assert!(
        c.l1_misses * 20 < c.memory_refs(),
        "hierarchy saw streaming-like behaviour"
    );
}

#[test]
fn burst_windows_nest_inside_whole_program() {
    let cfg = StudyConfig::fast();
    let run = encode_study(&MachineSpec::onyx2(), &tiny(3, 0, 1), &cfg).unwrap();
    let w = &run.vop_window;
    let c = &run.metrics.counters;
    // Loads happen almost exclusively inside the coding windows (the
    // input stage only stores); stores also happen during frame input,
    // which is outside the windows.
    assert!(w.loads > 0 && w.loads <= c.loads);
    assert!(w.stores > 0 && w.stores < c.stores);
    assert!(w.l1_misses <= c.l1_misses);
    assert!(w.l2_misses <= c.l2_misses);
    // The coding windows dominate the program.
    assert!(w.memory_refs() * 10 > c.memory_refs() * 5);
}
