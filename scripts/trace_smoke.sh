#!/usr/bin/env bash
# Observability smoke: run a tiny traced encode and validate its
# outputs. `trace_smoke` (crates/bench/src/bin/trace_smoke.rs) checks
# that the per-phase profile partitions the aggregate counters
# bit-for-bit and that the Chrome trace-event JSON round-trips through
# the in-tree parser, then writes:
#
#   TRACE_smoke.json   — load in chrome://tracing or Perfetto
#   PHASES_smoke.jsonl — per-phase counters + modelled stall cycles,
#                        consumed by `bench_compare --phases`
#
# Everything runs --offline like the rest of CI.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== trace smoke (offline) =="
cargo run -q --release --offline -p m4ps-bench --bin trace_smoke -- \
    "$PWD/TRACE_smoke.json" "$PWD/PHASES_smoke.jsonl"
echo "trace:  $PWD/TRACE_smoke.json"
echo "phases: $PWD/PHASES_smoke.jsonl"
