#!/usr/bin/env bash
# Hermetic verification: build, test, and smoke-bench with no network.
#
# Everything runs with --offline; if any step tries to reach a registry
# the workspace has regressed (see tests/hermetic.rs). The bench smoke
# run writes machine-readable BENCH_smoke.json at the repo root.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, offline) =="
cargo build --workspace --release --offline

echo "== tests (offline) =="
cargo test -q --workspace --offline

echo "== bench smoke run =="
cargo bench --offline -p m4ps-bench --bench kernels -- --smoke --json "$PWD/BENCH_smoke.json"

echo "== verify OK =="
echo "bench report: $PWD/BENCH_smoke.json"
