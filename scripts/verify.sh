#!/usr/bin/env bash
# Hermetic verification: build, test, and smoke-bench with no network.
#
# Everything runs with --offline; if any step tries to reach a registry
# the workspace has regressed (see tests/hermetic.rs). The bench smoke
# run writes machine-readable BENCH_smoke.json at the repo root, then
# bench_compare gates it against the committed baseline (the pre-run
# copy of that same file): any median more than 25% above baseline
# fails, the parallel/encode_frame and parallel/decode_frame
# thread-scaling speedups must clear bench_compare's machine-aware
# floor (>=2x at threads=4 on a >=4-core machine; starved runners only
# bound pool overhead), and the slice-parallel decode construction may
# cost at most +2% on one worker vs the legacy sequential decoder
# (threads=1 vs threads=seq). Set M4PS_BENCH_SKIP_COMPARE=1 to
# regenerate the baseline on a machine where the committed numbers
# don't apply.

set -euo pipefail
cd "$(dirname "$0")/.."

# --tiers additionally re-runs the dsp+codec suites with each SIMD
# kernel tier forced via M4PS_KERNELS (the sweep CI's kernel-tiers
# matrix runs). Tiers the CPU lacks are skipped WITH A NOTICE — a
# forced-but-unsupported tier would panic, never silently pass.
run_tiers=0
for arg in "$@"; do
    case "$arg" in
        --tiers) run_tiers=1 ;;
        *) echo "verify.sh: unknown argument $arg" >&2; exit 2 ;;
    esac
done

tier_supported() {
    case "$1" in
        scalar) return 0 ;;
        sse2|avx2)
            [[ "$(uname -m)" == "x86_64" ]] || return 1
            [[ "$1" == "sse2" ]] && return 0  # x86-64 baseline
            grep -qw avx2 /proc/cpuinfo 2>/dev/null ;;
        *) return 1 ;;
    esac
}

echo "== build (release, offline) =="
cargo build --workspace --release --offline

echo "== tests (offline) =="
cargo test -q --workspace --offline

if [[ "$run_tiers" == "1" ]]; then
    for tier in scalar sse2 avx2; do
        if tier_supported "$tier"; then
            echo "== kernel-tier sweep: M4PS_KERNELS=$tier (offline) =="
            M4PS_KERNELS="$tier" cargo test -q --offline -p m4ps-dsp -p m4ps-codec
        else
            echo "== kernel-tier sweep: SKIPPED M4PS_KERNELS=$tier (CPU lacks $tier) =="
        fi
    done
fi

# The charging fast path must stay counter-bit-identical to the naive
# reference model; run the differential suites explicitly so a gate
# failure names them even when someone filters the workspace run.
echo "== charging fast-path differential (offline) =="
cargo test -q --offline -p m4ps-memsim --test fastpath_equiv
cargo test -q --offline -p m4ps-codec --test fastpath_encode

# Observability smoke: traced encode, trace JSON round-trip, and the
# per-phase JSONL the bench gate annotates its report with.
scripts/trace_smoke.sh

# Multi-session service smoke: 64-session closed-loop batch plus an
# open-loop burst with admission thresholds armed; writes
# LOADGEN_smoke.json (sessions/sec + latency percentiles).
scripts/loadgen_smoke.sh

# Flight-recorder smoke: forced shed -> anomaly dump -> m4ps-obs
# report/trace; writes FLIGHT_smoke.jsonl + FLIGHT_smoke.trace.json.
scripts/obs_smoke.sh

echo "== bench smoke run =="
baseline=""
if [[ -f BENCH_smoke.json ]]; then
    baseline="target/bench_baseline.json"
    cp BENCH_smoke.json "$baseline"
fi

run_bench() {
    cargo bench --offline -p m4ps-bench --bench kernels -- \
        --smoke --json "$PWD/BENCH_smoke.json"
}

run_bench
if [[ -n "$baseline" && "${M4PS_BENCH_SKIP_COMPARE:-0}" != "1" ]]; then
    # Wall-clock medians on shared/1-core runners can swing well past
    # the gate threshold from scheduler interference alone, so a gate
    # failure earns one fresh re-measure before it is believed: noise
    # rarely strikes the same benchmarks twice, a real regression
    # always does.
    echo "== bench regression gate =="
    if ! cargo run -q --release --offline -p m4ps-testkit --bin bench_compare -- \
        "$baseline" BENCH_smoke.json --phases PHASES_smoke.jsonl; then
        echo "== gate failed; re-measuring once to rule out machine noise =="
        run_bench
        cargo run -q --release --offline -p m4ps-testkit --bin bench_compare -- \
            "$baseline" BENCH_smoke.json --phases PHASES_smoke.jsonl
    fi
fi

echo "== verify OK =="
echo "bench report: $PWD/BENCH_smoke.json"
echo "trace report: $PWD/TRACE_smoke.json"
