#!/usr/bin/env bash
# Multi-session service smoke: run `m4ps-loadgen` with a 64-session
# closed-loop batch plus a short open-loop burst with admission
# thresholds armed, and validate the reports. Writes:
#
#   LOADGEN_smoke.json — sessions/sec, frames/sec, p50/p90/p99/p99.9/max
#                        frame latency, pool queue-wait percentiles,
#                        per-session merged memory-hierarchy counters
#                        (--memsim), and throughput per WFQ weight
#                        class for the closed-loop batch (CI artifact)
#   LOADGEN_decode_smoke.json — the same report for a decode-replay
#                        batch (`--mode decode`): decode sessions/sec
#                        and frame-latency percentiles (CI artifact)
#
# The smoke asserts the service actually sustained the offered load:
# every closed-loop session must complete (the batch applies no
# admission limits), sessions/sec must be positive, and the latency
# percentiles must be present and ordered. Everything runs --offline
# like the rest of CI.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== loadgen smoke: closed-loop 64-session batch (offline) =="
cargo run -q --release --offline -p m4ps-serve --bin m4ps-loadgen -- \
    --sessions 64 --frames 3 --threads 4 --drivers 8 \
    --memsim --weights 1,2 \
    --json "$PWD/LOADGEN_smoke.json"

if command -v python3 >/dev/null 2>&1; then
    python3 - "$PWD/LOADGEN_smoke.json" <<'PY'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["completed"] == 64, f"expected 64 completed sessions, got {r['completed']}"
assert r["sessions_per_sec"] > 0, "sessions/sec must be positive"
assert r["frame_p99_ms"] >= r["frame_p50_ms"] > 0, "latency percentiles must be ordered"
assert r["frame_p999_ms"] >= r["frame_p99_ms"], "p99.9 must dominate p99"
assert r["frame_max_ms"] > 0, "max latency must be present"
done = [s for s in r["per_session"] if s["status"] == "completed"]
assert len(done) == 64, "per-session rows must cover every completed session"
assert all(s["counters"]["loads"] > 0 for s in done), \
    "--memsim must attribute per-session hierarchy counters"
weights = {int(w["weight"]): w for w in r["weight_classes"]}
assert set(weights) == {1, 2} and all(w["completed"] == 32 for w in weights.values()), \
    f"weight classes must split 32/32: {weights}"
print(f"  {r['sessions_per_sec']:.1f} sessions/s, "
      f"frame p50 {r['frame_p50_ms']:.3f} ms, p99 {r['frame_p99_ms']:.3f} ms, "
      f"p99.9 {r['frame_p999_ms']:.3f} ms, max {r['frame_max_ms']:.3f} ms")
PY
else
    # No python3 on this runner: grep-level checks only.
    grep -q '"completed": 64' LOADGEN_smoke.json
    grep -q '"sessions_per_sec"' LOADGEN_smoke.json
    grep -q '"frame_p99_ms"' LOADGEN_smoke.json
fi

echo "== loadgen smoke: decode-replay 32-session batch (offline) =="
# Each session pre-encodes its content off the service clock, then
# replays the streams through the slice-parallel decoder; the report's
# throughput and latency figures measure decode only.
cargo run -q --release --offline -p m4ps-serve --bin m4ps-loadgen -- \
    --mode decode --sessions 32 --frames 3 --threads 4 --drivers 8 \
    --json "$PWD/LOADGEN_decode_smoke.json"

if command -v python3 >/dev/null 2>&1; then
    python3 - "$PWD/LOADGEN_decode_smoke.json" <<'PY'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["mode"] == "decode", f"expected decode mode, got {r['mode']}"
assert r["completed"] == 32, f"expected 32 completed sessions, got {r['completed']}"
assert r["sessions_per_sec"] > 0, "decode sessions/sec must be positive"
assert r["frame_p99_ms"] >= r["frame_p50_ms"] > 0, "latency percentiles must be ordered"
assert r["frame_max_ms"] > 0, "max latency must be present"
done = [s for s in r["per_session"] if s["status"] == "completed"]
assert len(done) == 32, "per-session rows must cover every completed session"
assert all(s["bytes"] > 0 for s in done), \
    "decode sessions must report the stream bytes they consumed"
print(f"  {r['sessions_per_sec']:.1f} decode sessions/s, "
      f"frame p50 {r['frame_p50_ms']:.3f} ms, p99 {r['frame_p99_ms']:.3f} ms, "
      f"max {r['frame_max_ms']:.3f} ms")
PY
else
    grep -q '"mode": "decode"' LOADGEN_decode_smoke.json
    grep -q '"completed": 32' LOADGEN_decode_smoke.json
    grep -q '"frame_p99_ms"' LOADGEN_decode_smoke.json
fi

echo "== loadgen smoke: open-loop burst with admission thresholds armed =="
# Aggressive thresholds on purpose: the run may reject or shed under
# load — the smoke only requires that the service stays up and resolves
# every submitted session (any *failed* session exits nonzero via the
# binary itself).
cargo run -q --release --offline -p m4ps-serve --bin m4ps-loadgen -- \
    --sessions 32 --frames 2 --threads 2 --drivers 4 \
    --mode open --rate 2000 --reject-p99-us 50000 --shed-p99-us 100000 --min-window 16

echo "loadgen reports: $PWD/LOADGEN_smoke.json $PWD/LOADGEN_decode_smoke.json"
