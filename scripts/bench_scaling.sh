#!/usr/bin/env bash
# Thread-scaling bench: run the parallel/encode_frame/threads=N and
# parallel/decode_frame/threads={seq,N} series, write BENCH_scaling.json
# at the repo root, and print the speedup tables via `bench_compare
# --scaling` (which also enforces the machine-aware threads=4 speedup
# floors — encode and decode — and the decode construction-overhead
# ceiling; override the floor with M4PS_MIN_SCALING=<x>).
#
# Offline like everything else; CI uploads BENCH_scaling.json as an
# artifact next to BENCH_smoke.json.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== thread-scaling bench (parallel/{encode,decode}_frame) =="
# threads=N series only ("frame/threads" matches the encode and decode
# series and nothing else): the obs=on/off overhead pair is gated by
# verify.sh's baseline comparison, and the 1-iteration smoke medians
# are too noisy to gate it twice.
cargo bench --offline -p m4ps-bench --bench kernels -- \
    --smoke --json "$PWD/BENCH_scaling.json" frame/threads

# The report stamps the resolved SIMD kernel tier into meta.kernel_tier
# (bench_compare refuses to diff reports from different tiers); surface
# it here so CI logs say which tier produced these numbers.
tier=$(grep -o '"kernel_tier": "[a-z0-9]*"' BENCH_scaling.json | cut -d'"' -f4)
echo "kernel tier: ${tier:-unknown} (M4PS_KERNELS=${M4PS_KERNELS:-auto})"

scaling_args=(--scaling BENCH_scaling.json)
if [[ -n "${M4PS_MIN_SCALING:-}" ]]; then
    scaling_args+=(--min-scaling "$M4PS_MIN_SCALING")
fi
cargo run -q --release --offline -p m4ps-testkit --bin bench_compare -- \
    "${scaling_args[@]}"

echo "scaling report: $PWD/BENCH_scaling.json"
