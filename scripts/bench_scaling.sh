#!/usr/bin/env bash
# Thread-scaling bench: run only the parallel/encode_frame/threads=N
# series, write BENCH_scaling.json at the repo root, and print the
# speedup table via `bench_compare --scaling` (which also enforces the
# machine-aware threads=4 speedup floor; override with
# M4PS_MIN_SCALING=<x>).
#
# Offline like everything else; CI uploads BENCH_scaling.json as an
# artifact next to BENCH_smoke.json.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== thread-scaling bench (parallel/encode_frame) =="
# threads=N series only: the obs=on/off overhead pair is gated by
# verify.sh's baseline comparison, and the 1-iteration smoke medians
# are too noisy to gate it twice.
cargo bench --offline -p m4ps-bench --bench kernels -- \
    --smoke --json "$PWD/BENCH_scaling.json" parallel/encode_frame/threads

scaling_args=(--scaling BENCH_scaling.json)
if [[ -n "${M4PS_MIN_SCALING:-}" ]]; then
    scaling_args+=(--min-scaling "$M4PS_MIN_SCALING")
fi
cargo run -q --release --offline -p m4ps-testkit --bin bench_compare -- \
    "${scaling_args[@]}"

echo "scaling report: $PWD/BENCH_scaling.json"
