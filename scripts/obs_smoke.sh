#!/usr/bin/env bash
# Flight-recorder smoke: force an admission shed in `m4ps-loadgen`,
# then prove the whole observability chain holds — the service writes
# an anomaly dump, the dump parses, `m4ps-obs report` produces the
# admission timeline and per-session breakdown, and the Chrome-trace
# re-export is valid JSON with the per-session lanes. Writes:
#
#   FLIGHT_smoke.jsonl      — the anomaly dump (CI artifact)
#   FLIGHT_smoke.trace.json — its Chrome-trace export (chrome://tracing)
#
# The loadgen run uses --memsim so the JSON report carries per-session
# memory-hierarchy counters, which `m4ps-obs report --loadgen` joins
# into its output. Everything runs --offline like the rest of CI.

set -euo pipefail
cd "$(dirname "$0")/.."

dumpdir="target/obs_smoke"
rm -rf "$dumpdir"
mkdir -p "$dumpdir"

echo "== obs smoke: forced shed writes a flight dump (offline) =="
# A zero shed threshold with a 1-sample window trips on the first
# admission check, so the run is guaranteed to produce an anomaly dump.
cargo run -q --release --offline -p m4ps-serve --bin m4ps-loadgen -- \
    --sessions 24 --frames 2 --threads 2 --drivers 2 \
    --memsim --weights 1,2 --shed-p99-us 0 --min-window 1 \
    --dump-dir "$dumpdir" --json "$dumpdir/loadgen.json"

dump=$(ls "$dumpdir"/flight_*.jsonl | head -1)
[[ -n "$dump" ]] || { echo "obs smoke: no flight dump written" >&2; exit 1; }

echo "== obs smoke: m4ps-obs report parses the dump =="
report=$(cargo run -q --release --offline -p m4ps-obs --bin m4ps-obs -- \
    report "$dump" --loadgen "$dumpdir/loadgen.json" --top 3)
echo "$report" | head -20
for section in "admission timeline" "per-session breakdown" \
               "frame-latency outliers" "per-session memory hierarchy"; do
    if ! grep -q "$section" <<<"$report"; then
        echo "obs smoke: report missing section: $section" >&2
        exit 1
    fi
done
# The forced shed must be visible in the admission timeline.
grep -q "SHED" <<<"$report" || { echo "obs smoke: no shed in timeline" >&2; exit 1; }

echo "== obs smoke: Chrome-trace re-export is valid =="
cargo run -q --release --offline -p m4ps-obs --bin m4ps-obs -- \
    trace "$dump" "$dumpdir/reexport.trace.json"

cp "$dump" "$PWD/FLIGHT_smoke.jsonl"
cp "${dump%.jsonl}.trace.json" "$PWD/FLIGHT_smoke.trace.json"

if command -v python3 >/dev/null 2>&1; then
    python3 - "$PWD/FLIGHT_smoke.trace.json" "$dumpdir/reexport.trace.json" <<'PY'
import json, sys
for path in sys.argv[1:]:
    doc = json.load(open(path))
    events = doc["traceEvents"]
    assert events, f"{path}: empty traceEvents"
    names = {e.get("args", {}).get("name") for e in events if e.get("ph") == "M"}
    assert any(n and n.startswith("session-") for n in names), \
        f"{path}: no per-session lanes in {sorted(filter(None, names))}"
    print(f"  {path}: {len(events)} events, lanes ok")
PY
fi

echo "flight dump:  $PWD/FLIGHT_smoke.jsonl"
echo "flight trace: $PWD/FLIGHT_smoke.trace.json"
