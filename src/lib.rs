//! `m4ps` — umbrella crate of the MPEG-4 performance-study
//! reproduction (*"An MPEG-4 Performance Study for non-SIMD, General
//! Purpose Architectures"*, McKee, Fang & Valero, ISPASS 2003).
//!
//! This facade re-exports the workspace crates:
//!
//! - [`bitstream`] — bit-level I/O and startcodes,
//! - [`dsp`] — DCT, quantization, zigzag, SAD, interpolation kernels,
//! - [`memsim`] — the simulated SGI memory hierarchies and Perfex-style
//!   counters,
//! - [`vidgen`] — deterministic synthetic video scenes,
//! - [`codec`] — the from-scratch MPEG-4 visual encoder/decoder whose
//!   every data access is traced,
//! - [`core`] — the characterization study: instrumented runs, fallacy
//!   verdicts, burstiness windows, streaming baselines, report tables.
//!
//! # Examples
//!
//! Encode a synthetic clip on a simulated SGI O2 and read the paper's
//! metrics:
//!
//! ```
//! use m4ps::core::study::{encode_study, StudyConfig, Workload};
//! use m4ps::memsim::MachineSpec;
//! use m4ps::vidgen::Resolution;
//!
//! let workload = Workload {
//!     resolution: Resolution::QCIF,
//!     frames: 2,
//!     objects: 0,
//!     layers: 1,
//!     seed: 42,
//! };
//! let run = encode_study(&MachineSpec::o2(), &workload, &StudyConfig::fast()).unwrap();
//! assert!(run.metrics.l1_miss_rate < 0.05); // MPEG-4 does not stream
//! ```

pub use m4ps_bitstream as bitstream;
pub use m4ps_codec as codec;
pub use m4ps_core as core;
pub use m4ps_dsp as dsp;
pub use m4ps_memsim as memsim;
pub use m4ps_vidgen as vidgen;
