//! Characterize: run the paper's measurement on one simulated machine
//! and print a Table-2/3-style column for encode and decode.
//!
//! ```text
//! cargo run --release --example characterize [frames] [slices] [threads]
//! ```
//!
//! `slices` partitions each VOP into that many independently decodable
//! macroblock-row slices (a bitstream parameter); `threads` is the
//! worker count the slices are scheduled onto (0 = `M4PS_THREADS` or
//! the machine's parallelism). The stream and the paper metrics are
//! identical for every thread count.

use m4ps::core::report::{format_cell, METRIC_ROWS};
use m4ps::core::study::{decode_study, encode_study, prepare_streams, StudyConfig, Workload};
use m4ps::memsim::MachineSpec;
use m4ps::vidgen::Resolution;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let frames: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(6);
    let slices: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(1);
    let threads: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(0);
    let machine = MachineSpec::o2();
    let workload = Workload::single(Resolution::PAL, frames);
    let config = StudyConfig::paper().with_parallel(slices, threads);

    println!(
        "machine: {} ({}, L2 {} MB); workload: {} at {}x{}, {} frames, {} slice(s)\n",
        machine.name,
        machine.cpu.short_name(),
        machine.l2.size_bytes / (1024 * 1024),
        workload.label(),
        workload.resolution.width,
        workload.resolution.height,
        frames,
        slices
    );

    println!("encoding (this simulates every memory access; expect ~0.5 s/frame)...");
    let enc = encode_study(&machine, &workload, &config)?;
    println!("decoding...");
    let streams = prepare_streams(&workload, &config)?;
    let dec = decode_study(&machine, &workload, &streams)?;

    println!("\n{:22} {:>14} {:>14}", "metrics", "encoding", "decoding");
    println!("{}", "-".repeat(52));
    for (row, label) in METRIC_ROWS.iter().enumerate() {
        println!(
            "{:22} {:>14} {:>14}",
            label,
            format_cell(&enc.metrics, row),
            format_cell(&dec.metrics, row)
        );
    }
    println!(
        "\nencode: {} VOPs, {} bitstream bytes, {:.1} M search candidates",
        enc.session.vops,
        enc.session.bytes,
        enc.session.totals.candidates as f64 / 1.0e6
    );
    println!(
        "simulated exec time: encode {:.2} s, decode {:.2} s (at {} MHz)",
        enc.metrics.exec_seconds, dec.metrics.exec_seconds, machine.clock_mhz
    );
    println!(
        "bus utilization: encode {:.2}%, decode {:.2}% of {:.0} MB/s sustained",
        enc.metrics.bus_utilization(&machine) * 100.0,
        dec.metrics.bus_utilization(&machine) * 100.0,
        machine.dram.sustained_mb_s
    );
    Ok(())
}
