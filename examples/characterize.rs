//! Characterize: run the paper's measurement on one simulated machine
//! and print a Table-2/3-style column for encode and decode.
//!
//! ```text
//! cargo run --release --example characterize [frames]
//! ```

use m4ps::core::report::{format_cell, METRIC_ROWS};
use m4ps::core::study::{decode_study, encode_study, prepare_streams, StudyConfig, Workload};
use m4ps::memsim::MachineSpec;
use m4ps::vidgen::Resolution;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let frames: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(6);
    let machine = MachineSpec::o2();
    let workload = Workload::single(Resolution::PAL, frames);
    let config = StudyConfig::paper();

    println!(
        "machine: {} ({}, L2 {} MB); workload: {} at {}x{}, {} frames\n",
        machine.name,
        machine.cpu.short_name(),
        machine.l2.size_bytes / (1024 * 1024),
        workload.label(),
        workload.resolution.width,
        workload.resolution.height,
        frames
    );

    println!("encoding (this simulates every memory access; expect ~0.5 s/frame)...");
    let enc = encode_study(&machine, &workload, &config)?;
    println!("decoding...");
    let streams = prepare_streams(&workload, &config)?;
    let dec = decode_study(&machine, &workload, &streams)?;

    println!("\n{:22} {:>14} {:>14}", "metrics", "encoding", "decoding");
    println!("{}", "-".repeat(52));
    for row in 0..METRIC_ROWS.len() {
        println!(
            "{:22} {:>14} {:>14}",
            METRIC_ROWS[row],
            format_cell(&enc.metrics, row),
            format_cell(&dec.metrics, row)
        );
    }
    println!(
        "\nencode: {} VOPs, {} bitstream bytes, {:.1} M search candidates",
        enc.session.vops,
        enc.session.bytes,
        enc.session.totals.candidates as f64 / 1.0e6
    );
    println!(
        "simulated exec time: encode {:.2} s, decode {:.2} s (at {} MHz)",
        enc.metrics.exec_seconds, dec.metrics.exec_seconds, machine.clock_mhz
    );
    println!(
        "bus utilization: encode {:.2}%, decode {:.2}% of {:.0} MB/s sustained",
        enc.metrics.bus_utilization(&machine) * 100.0,
        dec.metrics.bus_utilization(&machine) * 100.0,
        machine.dram.sustained_mb_s
    );
    Ok(())
}
