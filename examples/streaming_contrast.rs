//! Streaming contrast: the paper's headline claim, quantified.
//!
//! "Streaming MPEG-4" is routinely assumed to behave like a memory
//! stream. This example runs (a) the MPEG-4 encoder and (b) a *true*
//! streaming kernel through the **same** simulated SGI O2 memory
//! hierarchy and prints them side by side.
//!
//! ```text
//! cargo run --release --example streaming_contrast
//! ```

use m4ps::core::baseline::{run_resident, run_streaming, StreamingKernel};
use m4ps::core::report::{format_cell, METRIC_ROWS};
use m4ps::core::study::{encode_study, StudyConfig, Workload};
use m4ps::memsim::MachineSpec;
use m4ps::vidgen::Resolution;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = MachineSpec::o2();
    let workload = Workload::single(Resolution::PAL, 4);

    println!("simulating the MPEG-4 encoder (every access traced)...");
    let codec = encode_study(&machine, &workload, &StudyConfig::paper())?;
    println!("simulating a true streaming kernel (32 MB, 2 passes)...");
    let stream = run_streaming(&machine, &StreamingKernel::default());
    println!("simulating an L1-resident kernel (16 KB, 2000 passes)...\n");
    let resident = run_resident(&machine, 16 * 1024, 2000);

    println!(
        "{:22} {:>14} {:>14} {:>14}",
        "metrics", "MPEG-4 encode", "streaming", "L1-resident"
    );
    println!("{}", "-".repeat(66));
    for (row, label) in METRIC_ROWS.iter().enumerate() {
        println!(
            "{:22} {:>14} {:>14} {:>14}",
            label,
            format_cell(&codec.metrics, row),
            format_cell(&stream, row),
            format_cell(&resident, row)
        );
    }
    println!(
        "\nbus utilization:      {:>13.2}% {:>13.1}% {:>13.3}%",
        codec.metrics.bus_utilization(&machine) * 100.0,
        stream.bus_utilization(&machine) * 100.0,
        resident.bus_utilization(&machine) * 100.0
    );
    println!(
        "\nThe codec's line reuse is {}x the streaming kernel's: the data\n\
         references in \"streaming MPEG-4\" do not really stream.",
        (codec.metrics.l1_line_reuse / stream.l1_line_reuse).round() as u64
    );
    Ok(())
}
