//! Error resilience: resynchronization markers in action.
//!
//! MPEG-4's streaming ambitions (the paper's introduction: "digital
//! television and internet streaming video to mobile multimedia") made
//! error resilience a first-class tool. This example encodes a clip
//! with resync markers, corrupts the transport, and shows the decoder
//! concealing the damaged segment and recovering at the next marker.
//!
//! ```text
//! cargo run --release --example error_resilience
//! ```

use m4ps::bitstream::BitReader;
use m4ps::codec::{EncoderConfig, FrameView, VideoObjectCoder, VideoObjectDecoder};
use m4ps::memsim::{AddressSpace, NullModel};
use m4ps::vidgen::{Resolution, Scene, SceneSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let res = Resolution::CIF;
    let frames = 6;
    let scene = Scene::new(SceneSpec {
        resolution: res,
        objects: 2,
        seed: 404,
    });

    let mut config = EncoderConfig::paper();
    config.resync_mb_interval = Some(60); // a marker every ~3 MB rows

    let mut space = AddressSpace::new();
    let mut mem = NullModel::new();
    let mut coder = VideoObjectCoder::new(&mut space, res.width, res.height, config)?;
    let mut stream = coder.header_bytes();
    for t in 0..frames {
        let f = scene.frame(t);
        let view = FrameView {
            width: res.width,
            height: res.height,
            y: &f.y,
            u: &f.u,
            v: &f.v,
        };
        for vop in coder.encode_frame(&mut mem, &view, None)? {
            stream.extend_from_slice(&vop.bytes);
        }
    }
    for vop in coder.flush(&mut mem)? {
        stream.extend_from_slice(&vop.bytes);
    }
    println!(
        "encoded {frames} frames with resync markers every 60 MBs: {} bytes",
        stream.len()
    );

    // Simulate transport damage: flip a burst of bytes mid-stream.
    let mut damaged = stream.clone();
    let hit = damaged.len() / 2;
    for b in damaged[hit..hit + 6].iter_mut() {
        *b ^= 0x5f;
    }
    println!("corrupted 6 bytes at offset {hit}");

    for (label, bytes) in [("clean", &stream), ("damaged", &damaged)] {
        let mut dspace = AddressSpace::new();
        let mut r = BitReader::new(bytes);
        let mut dec = VideoObjectDecoder::from_stream(&mut dspace, &mut mem, &mut r)?;
        let mut vops = 0;
        let mut concealed = 0u64;
        while let Some(v) = dec.decode_next(&mut mem, &mut r)? {
            vops += 1;
            concealed += v.stats.concealed_mbs;
        }
        println!(
            "{label:8} decode: {vops} VOPs, {concealed} macroblocks concealed{}",
            if concealed > 0 {
                " (picture recovered at the next marker)"
            } else {
                ""
            }
        );
    }
    Ok(())
}
