//! Multi-object scene: encode three arbitrary-shaped visual objects
//! with two temporal-scalability layers each (the paper's heaviest
//! configuration), decode all six elementary streams, recompose the
//! scene, and show the paper's paradox — memory behaviour does not
//! degrade as objects and layers multiply.
//!
//! ```text
//! cargo run --release --example multi_object_scene
//! ```

use m4ps::codec::FrameView;
use m4ps::codec::{SceneDecoder, SceneEncoder};
use m4ps::core::study::{decode_study, prepare_streams, StudyConfig, Workload};
use m4ps::memsim::{AddressSpace, MachineSpec, MemoryMetrics, NullModel};
use m4ps::vidgen::{Resolution, Scene, SceneSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let res = Resolution::CIF;
    let frames = 8;
    let scene = Scene::new(SceneSpec {
        resolution: res,
        objects: 3,
        seed: 99,
    });

    // --- Functional demo: 3 VOs x 2 VOLs end to end. -------------------
    let mut space = AddressSpace::new();
    let mut mem = NullModel::new();
    let config = StudyConfig::paper().encoder;
    let mut enc = SceneEncoder::new(&mut space, res.width, res.height, 3, 2, config)?;
    for t in 0..frames {
        let f = scene.frame(t);
        let masks: Vec<Vec<u8>> = (0..3).map(|vo| scene.alpha(t, vo).data).collect();
        let mask_refs: Vec<&[u8]> = masks.iter().map(|m| m.as_slice()).collect();
        let view = FrameView {
            width: res.width,
            height: res.height,
            y: &f.y,
            u: &f.u,
            v: &f.v,
        };
        enc.encode_frame(&mut mem, &view, &mask_refs)?;
    }
    let stats = enc.stats();
    let streams = enc.finish(&mut mem)?;
    println!(
        "encoded {} frames as {} VOPs across {} elementary streams ({} bytes total)",
        stats.frames,
        stats.vops,
        streams.len(),
        streams.iter().map(|s| s.len()).sum::<usize>()
    );
    for (i, s) in streams.iter().enumerate() {
        println!(
            "  stream {i} (vo {}, layer {}): {:6} bytes",
            i / 2,
            i % 2,
            s.len()
        );
    }

    let mut dspace = AddressSpace::new();
    let mut dec = SceneDecoder::new(&mut dspace, &mut mem, &streams, 2)?;
    let vops = dec.decode_all(&mut mem, &streams)?;
    println!("decoded {} VOPs and recomposed the scene", vops.len());

    // --- The paper's paradox: decode cache behaviour vs object count. --
    println!("\ndecode L1/L2 miss rates on the R10K/2MB machine (paper Figs 3-4):");
    let machine = MachineSpec::onyx_vtx();
    let study_cfg = StudyConfig::paper();
    for (objects, layers) in [(0usize, 1usize), (3, 1), (3, 2)] {
        let w = Workload {
            resolution: res,
            frames,
            objects,
            layers,
            seed: 99,
        };
        let s = prepare_streams(&w, &study_cfg)?;
        let run = decode_study(&machine, &w, &s)?;
        let m: &MemoryMetrics = &run.metrics;
        println!(
            "  {:22} L1C {:5.3}%  L2C {:6.2}%  resident {:4} MB",
            w.label(),
            m.l1_miss_rate * 100.0,
            m.l2_miss_rate * 100.0,
            run.resident_bytes / 1_000_000
        );
    }
    println!("\nMemory requirements grow with objects and layers; miss rates do not.");
    Ok(())
}
