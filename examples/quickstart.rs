//! Quickstart: encode a synthetic clip, decode it back, report quality
//! and bitrate — the plain codec API with no memory simulation.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use m4ps::bitstream::BitReader;
use m4ps::codec::{EncoderConfig, FrameView, VideoObjectCoder, VideoObjectDecoder};
use m4ps::memsim::{AddressSpace, NullModel};
use m4ps::vidgen::{Resolution, Scene, SceneSpec, YuvFrame};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let res = Resolution::CIF;
    let frames = 12;
    let scene = Scene::new(SceneSpec {
        resolution: res,
        objects: 2,
        seed: 2026,
    });

    // NullModel: run the codec at full speed, no cache simulation.
    let mut space = AddressSpace::new();
    let mut mem = NullModel::new();
    let mut coder =
        VideoObjectCoder::new(&mut space, res.width, res.height, EncoderConfig::paper())?;

    let mut stream = coder.header_bytes();
    let mut sources: Vec<YuvFrame> = Vec::new();
    for t in 0..frames {
        let f = scene.frame(t);
        let view = FrameView {
            width: res.width,
            height: res.height,
            y: &f.y,
            u: &f.u,
            v: &f.v,
        };
        for vop in coder.encode_frame(&mut mem, &view, None)? {
            println!(
                "encoded {:?}-VOP (display {:2}) qp {:2}: {:6} bytes",
                vop.kind,
                vop.display_index,
                vop.qp,
                vop.bytes.len()
            );
            stream.extend_from_slice(&vop.bytes);
        }
        sources.push(f);
    }
    for vop in coder.flush(&mut mem)? {
        println!(
            "encoded {:?}-VOP (display {:2}) qp {:2}: {:6} bytes (flush)",
            vop.kind,
            vop.display_index,
            vop.qp,
            vop.bytes.len()
        );
        stream.extend_from_slice(&vop.bytes);
    }

    let kbps = stream.len() as f64 * 8.0 * 30.0 / frames as f64 / 1000.0;
    println!(
        "\ntotal bitstream: {} bytes ({kbps:.1} kbit/s at 30 Hz)",
        stream.len()
    );

    // Decode and measure fidelity.
    let mut dspace = AddressSpace::new();
    let mut r = BitReader::new(&stream);
    let mut decoder = VideoObjectDecoder::from_stream(&mut dspace, &mut mem, &mut r)?;
    decoder.set_keep_output(true);
    let mut decoded = Vec::new();
    while let Some(vop) = decoder.decode_next(&mut mem, &mut r)? {
        decoded.push(vop);
    }
    decoded.sort_by_key(|v| v.display_index);

    println!("\nper-frame luma PSNR:");
    for vop in &decoded {
        let planes = vop.planes.as_ref().expect("kept output");
        let mut rec = YuvFrame::grey(res);
        rec.y.copy_from_slice(&planes.y);
        let psnr = sources[vop.display_index].psnr_luma(&rec);
        println!(
            "  frame {:2} ({:?}): {:5.2} dB",
            vop.display_index, vop.kind, psnr
        );
    }
    Ok(())
}
